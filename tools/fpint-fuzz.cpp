//===- tools/fpint-fuzz.cpp - Differential fuzzing driver ------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// fpint-fuzz: generates random sir modules and checks, for each, that
/// every partitioning pipeline variant preserves the program's exact
/// semantics (output stream, exit value, memory image, deterministic
/// trap) and that the timing simulator and stats subsystem agree on
/// the dynamic instruction counts per partition.
///
/// Every iteration runs in a forked sandbox (support::Subprocess), so
/// a checker crash or hang fails only that iteration: the campaign
/// always runs to completion and the parent never aborts. Failures
/// are triaged into buckets -- mismatches by the oracle's verdict,
/// crashes and hangs by (signal, last oracle stage reached) -- and
/// the first instance of each bucket is shrunk with the
/// delta-debugging reducer and written to the regression corpus with
/// a replay command.
///
///   fpint-fuzz --iters 500 --seed 1
///   fpint-fuzz --one 0x1234abcd --preset memory     # replay one module
///   fpint-fuzz --iters 2000 --write-repro tests/corpus/regressions
///   fpint-fuzz --timeout-ms 2000                    # hang guard per iter
///
/// The base seed defaults to $FPINT_FUZZ_SEED (then 1); every failure
/// message prints the exact --one module seed that reproduces it.
/// --no-sandbox runs iterations in-process (for debuggers); a crash
/// then kills the campaign, so it is never the CI mode.
///
//===----------------------------------------------------------------------===//

#include "campaign/Journal.h"
#include "core/PassManager.h"
#include "sir/Printer.h"
#include "sir/Verifier.h"
#include "support/Hash.h"
#include "support/Subprocess.h"
#include "testgen/Generator.h"
#include "testgen/Oracle.h"
#include "testgen/Reducer.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace fpint;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: fpint-fuzz [options]\n"
      "\n"
      "  --iters N            modules to generate and check (default 100)\n"
      "  --seed S             base seed (default: $FPINT_FUZZ_SEED, then 1)\n"
      "  --one S              check exactly one module with module seed S\n"
      "  --preset NAME        generator preset (default cycles through all);\n"
      "                       one of: default branchy memory fp calls tiny\n"
      "                       intonly\n"
      "  --write-repro DIR    where reduced repros go (default\n"
      "                       tests/corpus/regressions)\n"
      "  --timeout-ms N       wall-clock guard per sandboxed iteration\n"
      "                       (default 10000; hangs become triaged repros)\n"
      "  --journal DIR        journal completed batches into DIR so an\n"
      "                       interrupted campaign resumes from the last\n"
      "                       completed batch, with the journaled base seed\n"
      "                       (see docs/CAMPAIGNS.md; ignored with --one)\n"
      "  --batch N            iterations per journaled batch (default 100)\n"
      "  --no-sandbox         run iterations in-process (debugging only;\n"
      "                       a checker crash then kills the campaign)\n"
      "  --no-reduce          report failures without shrinking\n"
      "  --no-timing          skip the simulator cross-checks (faster)\n"
      "  --passes TEXT        add a variant compiling with the given pass\n"
      "                       pipeline text (repeatable; see docs/PASSES.md;\n"
      "                       checked against the unpartitioned baseline)\n"
      "  --regalloc           add the register-allocator battery: both\n"
      "                       backends (regalloc, regalloc-linear) under\n"
      "                       the none/basic/advanced schemes\n"
      "  --midend             add the mid-end variant battery: gvn, licm,\n"
      "                       unroll, unroll<4>, inline each alone, plus the\n"
      "                       full opt2 preset (see docs/TRANSFORMS.md)\n"
      "  --keep-going         check all iterations even after a failure\n"
      "  --emit               print each generated module (debugging)\n"
      "  --quiet              only print failures and the final summary\n");
}

uint64_t parseSeed(const char *S) {
  return std::strtoull(S, nullptr, 0);
}

struct FuzzStats {
  uint64_t Modules = 0;
  uint64_t Skipped = 0;
  uint64_t DynInstrs = 0;
  uint64_t Mismatches = 0;
  uint64_t Crashes = 0;
  uint64_t Hangs = 0;
};

std::string sanitizeFileName(std::string S) {
  for (char &C : S)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return S;
}

/// FNV-1a over \p S, rendered as 8 hex digits (bucket keys).
std::string fnv8(const std::string &S) {
  uint32_t H = 2166136261u;
  for (unsigned char C : S) {
    H ^= C;
    H *= 16777619u;
  }
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "%08x", H);
  return Buf;
}

/// Everything the parent learns from one checked module.
struct IterOutcome {
  enum class Kind {
    Pass,         ///< Oracle ran, no mismatch.
    Skip,         ///< Baseline hit a resource limit; says nothing.
    Mismatch,     ///< Oracle found a semantic divergence.
    GeneratorBug, ///< Generated module failed the strict verifier.
    Crash,        ///< Checker died on a signal (or uncaught exception).
    Hang,         ///< Watchdog destroyed the checker.
    SpawnFailed,  ///< fork failed; infrastructure, not a finding.
  };
  Kind K = Kind::SpawnFailed;
  std::vector<std::string> Mismatches;
  std::string SkipReason;
  std::string LastStage; ///< Last oracle breadcrumb before death.
  int Signal = 0;        ///< Fatal signal for Crash.
  uint64_t DynInstrs = 0;
  std::string Describe; ///< Human-readable sandbox verdict.
};

/// Child exit codes of the sandboxed checker (anything else, plus
/// signals and timeouts, is classified by the parent).
enum : int {
  ExitPass = 0,
  ExitMismatch = 3,
  ExitSkip = 4,
  ExitGeneratorBug = 5,
};

/// The checker body; runs in the sandbox child (or in-process with
/// --no-sandbox). Streams breadcrumbs and results as prefixed lines
/// over \p Send so a mid-flight death still leaves triage data.
template <typename SendFn>
int checkModule(const sir::Module &M, const testgen::OracleOptions &BaseOpts,
                const SendFn &Send) {
  sir::VerifyOptions Strict;
  Strict.CheckDataflow = true;
  std::vector<std::string> Diags = sir::verify(M, Strict);
  if (!Diags.empty()) {
    Send("G" + Diags.front());
    return ExitGeneratorBug;
  }

  testgen::OracleOptions Opts = BaseOpts;
  Opts.Progress = [&](const std::string &Stage) { Send("@" + Stage); };
  testgen::OracleReport Report = testgen::runOracle(M, Opts);
  Send("D" + std::to_string(Report.BaselineDynInstrs));
  if (Report.BaselineSkipped) {
    Send("S" + Report.BaselineError);
    return ExitSkip;
  }
  for (const std::string &Msg : Report.Mismatches)
    Send("M" + Msg);
  return Report.Mismatches.empty() ? ExitPass : ExitMismatch;
}

/// Folds the streamed checker lines into \p Out.
void parseCheckerLines(const std::string &Payload, IterOutcome &Out) {
  size_t Pos = 0;
  while (Pos < Payload.size()) {
    size_t End = Payload.find('\n', Pos);
    if (End == std::string::npos)
      End = Payload.size();
    std::string Line = Payload.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Line.empty())
      continue;
    std::string Rest = Line.substr(1);
    switch (Line[0]) {
    case '@':
      Out.LastStage = Rest;
      break;
    case 'D':
      Out.DynInstrs = std::strtoull(Rest.c_str(), nullptr, 10);
      break;
    case 'S':
      Out.SkipReason = Rest;
      break;
    case 'M':
      Out.Mismatches.push_back(Rest);
      break;
    case 'G':
      Out.Mismatches.push_back("generator bug: " + Rest);
      break;
    default:
      break;
    }
  }
}

/// Checks \p M inside a forked sandbox and classifies the result.
IterOutcome checkSandboxed(const sir::Module &M,
                           const testgen::OracleOptions &Opts,
                           int TimeoutMs) {
  support::SandboxLimits Limits;
  Limits.WallMs = TimeoutMs;
  Limits.KillGraceMs = 300;
  Limits.AddressSpaceMb = 4096;

  support::TaskResult R = support::Subprocess::run(
      [&](int Fd) {
        auto Send = [Fd](const std::string &Line) {
          support::Subprocess::writeAll(Fd, Line + "\n");
        };
        return checkModule(M, Opts, Send);
      },
      Limits);

  IterOutcome Out;
  Out.Describe = R.describe();
  parseCheckerLines(R.Payload, Out);

  using Status = support::TaskResult::Status;
  if (R.TimedOut || R.Killed) {
    Out.K = IterOutcome::Kind::Hang;
  } else if (R.St == Status::Signaled) {
    Out.K = IterOutcome::Kind::Crash;
    Out.Signal = R.TermSignal;
  } else if (R.St == Status::SpawnFailed) {
    Out.K = IterOutcome::Kind::SpawnFailed;
  } else {
    switch (R.ExitCode) {
    case ExitPass:
      Out.K = IterOutcome::Kind::Pass;
      break;
    case ExitMismatch:
      Out.K = IterOutcome::Kind::Mismatch;
      break;
    case ExitSkip:
      Out.K = IterOutcome::Kind::Skip;
      break;
    case ExitGeneratorBug:
      Out.K = IterOutcome::Kind::GeneratorBug;
      break;
    default:
      // Uncaught exception (125) or other abnormal exit: triage like
      // a crash, with the exit code in the signal slot's place.
      Out.K = IterOutcome::Kind::Crash;
      Out.Signal = 0;
      break;
    }
  }
  return Out;
}

/// In-process fallback (--no-sandbox): same classification, no
/// containment.
IterOutcome checkInProcess(const sir::Module &M,
                           const testgen::OracleOptions &Opts) {
  IterOutcome Out;
  std::vector<std::string> Lines;
  int Code = checkModule(
      M, Opts, [&](const std::string &Line) { Lines.push_back(Line); });
  std::string Payload;
  for (const std::string &L : Lines)
    Payload += L + "\n";
  parseCheckerLines(Payload, Out);
  Out.K = Code == ExitPass         ? IterOutcome::Kind::Pass
          : Code == ExitMismatch   ? IterOutcome::Kind::Mismatch
          : Code == ExitSkip       ? IterOutcome::Kind::Skip
                                   : IterOutcome::Kind::GeneratorBug;
  Out.Describe = "in-process";
  return Out;
}

/// Stable bucket key for one failure: mismatches bucket on the first
/// verdict line, crashes/hangs on (signal, last oracle stage).
std::string bucketKey(const IterOutcome &Out) {
  switch (Out.K) {
  case IterOutcome::Kind::Mismatch:
  case IterOutcome::Kind::GeneratorBug:
    return "mismatch_" +
           fnv8(Out.Mismatches.empty() ? "?" : Out.Mismatches.front());
  case IterOutcome::Kind::Crash:
    return "crash_sig" + std::to_string(Out.Signal) + "_" +
           fnv8(Out.LastStage.empty() ? "(pre-oracle)" : Out.LastStage);
  case IterOutcome::Kind::Hang:
    return "hang_" +
           fnv8(Out.LastStage.empty() ? "(pre-oracle)" : Out.LastStage);
  default:
    return "none";
  }
}

const char *kindName(IterOutcome::Kind K) {
  switch (K) {
  case IterOutcome::Kind::Pass:
    return "pass";
  case IterOutcome::Kind::Skip:
    return "skip";
  case IterOutcome::Kind::Mismatch:
    return "MISMATCH";
  case IterOutcome::Kind::GeneratorBug:
    return "GENERATOR BUG";
  case IterOutcome::Kind::Crash:
    return "CRASH";
  case IterOutcome::Kind::Hang:
    return "HANG";
  case IterOutcome::Kind::SpawnFailed:
    return "spawn failed";
  }
  return "?";
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Iters = 100;
  uint64_t BaseSeed = 1;
  if (const char *Env = std::getenv("FPINT_FUZZ_SEED"))
    BaseSeed = parseSeed(Env);
  bool HaveOne = false;
  uint64_t OneSeed = 0;
  std::string Preset; // Empty: cycle through all presets.
  std::vector<std::string> PassTexts; // Extra --passes variants.
  bool Midend = false;                // Append testgen::midendVariants().
  bool RegAlloc = false;              // Append testgen::regallocVariants().
  std::string ReproDir = "tests/corpus/regressions";
  std::string JournalDir;
  uint64_t BatchSize = 100;
  int TimeoutMs = 10000;
  bool Sandbox = true, Reduce = true, CheckTiming = true, KeepGoing = false,
       Emit = false, Quiet = false;

  for (int A = 1; A < argc; ++A) {
    const char *Arg = argv[A];
    auto Value = [&]() -> const char * {
      if (A + 1 >= argc) {
        std::fprintf(stderr, "fpint-fuzz: %s needs a value\n", Arg);
        std::exit(2);
      }
      return argv[++A];
    };
    if (!std::strcmp(Arg, "--iters"))
      Iters = parseSeed(Value());
    else if (!std::strcmp(Arg, "--seed"))
      BaseSeed = parseSeed(Value());
    else if (!std::strcmp(Arg, "--one")) {
      HaveOne = true;
      OneSeed = parseSeed(Value());
    } else if (!std::strcmp(Arg, "--preset"))
      Preset = Value();
    else if (!std::strcmp(Arg, "--write-repro"))
      ReproDir = Value();
    else if (!std::strcmp(Arg, "--timeout-ms"))
      TimeoutMs = static_cast<int>(parseSeed(Value()));
    else if (!std::strcmp(Arg, "--journal"))
      JournalDir = Value();
    else if (!std::strcmp(Arg, "--batch"))
      BatchSize = std::max<uint64_t>(1, parseSeed(Value()));
    else if (!std::strcmp(Arg, "--no-sandbox"))
      Sandbox = false;
    else if (!std::strcmp(Arg, "--no-reduce"))
      Reduce = false;
    else if (!std::strcmp(Arg, "--no-timing"))
      CheckTiming = false;
    else if (!std::strcmp(Arg, "--passes"))
      PassTexts.push_back(Value());
    else if (!std::strcmp(Arg, "--midend"))
      Midend = true;
    else if (!std::strcmp(Arg, "--regalloc"))
      RegAlloc = true;
    else if (!std::strcmp(Arg, "--keep-going"))
      KeepGoing = true;
    else if (!std::strcmp(Arg, "--emit"))
      Emit = true;
    else if (!std::strcmp(Arg, "--quiet"))
      Quiet = true;
    else {
      usage();
      return 2;
    }
  }

  const std::vector<std::string> &Presets = testgen::presetNames();
  testgen::OracleOptions OracleOpts;
  OracleOpts.CheckTiming = CheckTiming;
  for (const std::string &Text : PassTexts) {
    // Reject malformed text up front instead of once per iteration.
    std::vector<std::unique_ptr<core::ModulePass>> Parsed;
    std::string ParseError;
    if (!core::parsePipeline(Text, Parsed, ParseError)) {
      std::fprintf(stderr, "fpint-fuzz: bad --passes: %s\n",
                   ParseError.c_str());
      return 2;
    }
    testgen::VariantSpec V;
    V.Name = "passes:" + Text;
    V.Config.Passes = Text;
    // The gated built-ins honor the config: advanced partitioning for
    // the generic "partition" name, and register allocation (plus the
    // oracle's timing cross-check) only when the text allocates.
    V.Config.Scheme = partition::Scheme::Advanced;
    V.Config.RunRegisterAllocation =
        Text.find("regalloc") != std::string::npos;
    V.Config.EnableFpArgPassing =
        Text.find("fp-arg-passing") != std::string::npos;
    OracleOpts.Variants.push_back(std::move(V));
  }
  if (Midend) {
    std::vector<testgen::VariantSpec> MV = testgen::midendVariants();
    OracleOpts.Variants.insert(OracleOpts.Variants.end(),
                               std::make_move_iterator(MV.begin()),
                               std::make_move_iterator(MV.end()));
  }
  if (RegAlloc) {
    std::vector<testgen::VariantSpec> RV = testgen::regallocVariants();
    OracleOpts.Variants.insert(OracleOpts.Variants.end(),
                               std::make_move_iterator(RV.begin()),
                               std::make_move_iterator(RV.end()));
  }
  FuzzStats Stats;
  std::map<std::string, uint64_t> Buckets;
  int Exit = 0;

  // --journal: resume an interrupted campaign from its last completed
  // batch. The campaign identity covers everything that changes what
  // the batches check -- iteration count, preset, variant battery,
  // batch size -- but NOT the seed: on resume the journaled header's
  // seed is adopted, so a restarted nightly run continues the exact
  // random sequence it started with (docs/CAMPAIGNS.md).
  const bool UseJournal = !JournalDir.empty() && !HaveOne;
  campaign::Journal Journal;
  std::set<uint64_t> DoneBatches;
  if (UseJournal) {
    uint64_t KeyH = support::fnv1a64("fpint-fuzz");
    auto Fold = [&KeyH](const std::string &Part) {
      KeyH = support::fnv1a64("\x1f" + Part, KeyH);
    };
    Fold(campaign::JournalSchema);
    Fold(std::to_string(Iters));
    Fold(Preset);
    for (const std::string &Text : PassTexts)
      Fold("passes:" + Text);
    Fold(std::to_string(Midend));
    // Folded only when on so pre-existing campaign journals keep their
    // identity (the flag did not exist when they were written).
    if (RegAlloc)
      Fold("regalloc");
    Fold(std::to_string(CheckTiming));
    Fold(std::to_string(BatchSize));
    const std::string CampaignKey = support::hex64(KeyH);

    std::vector<json::Value> Records;
    campaign::Journal::RecoveryInfo Info;
    std::string Err;
    if (!Journal.open(
            JournalDir + "/journal.wal",
            [&](const json::Value &R) { Records.push_back(R); }, Info,
            &Err)) {
      std::fprintf(stderr, "fpint-fuzz: journal: %s\n", Err.c_str());
      return 2;
    }
    const bool HaveHeader =
        !Records.empty() && Records.front().strOr("type", "") == "campaign" &&
        Records.front().strOr("schema", "") == campaign::JournalSchema &&
        Records.front().strOr("key", "") == CampaignKey;
    if (HaveHeader) {
      BaseSeed = parseSeed(Records.front().strOr("seed", "1").c_str());
      for (size_t I = 1; I < Records.size(); ++I) {
        const json::Value &R = Records[I];
        if (R.strOr("type", "") != "batch")
          continue;
        DoneBatches.insert(static_cast<uint64_t>(R.numberOr("index", 0)));
        Stats.Modules += static_cast<uint64_t>(R.numberOr("modules", 0));
        Stats.Skipped += static_cast<uint64_t>(R.numberOr("skipped", 0));
        Stats.DynInstrs += static_cast<uint64_t>(R.numberOr("dyn_instrs", 0));
        Stats.Mismatches +=
            static_cast<uint64_t>(R.numberOr("mismatches", 0));
        Stats.Crashes += static_cast<uint64_t>(R.numberOr("crashes", 0));
        Stats.Hangs += static_cast<uint64_t>(R.numberOr("hangs", 0));
        Exit = std::max(Exit, static_cast<int>(R.numberOr("exit", 0)));
        const json::Value *B = R.find("buckets");
        if (B && B->isObject())
          for (const auto &Member : B->members())
            Buckets[Member.first] +=
                static_cast<uint64_t>(Member.second.number());
      }
      if (!DoneBatches.empty())
        std::fprintf(stderr,
                     "fpint-fuzz: resuming campaign (base seed 0x%" PRIx64
                     "): %zu batch(es) already complete\n",
                     BaseSeed, DoneBatches.size());
    } else {
      if (!Records.empty()) {
        // A journal bound to a different campaign is discarded, never
        // merged (the campaign::Runner contract).
        std::fprintf(stderr, "fpint-fuzz: journal belongs to a different "
                             "campaign; starting fresh\n");
        if (!Journal.reset(&Err)) {
          std::fprintf(stderr, "fpint-fuzz: journal: %s\n", Err.c_str());
          return 2;
        }
      }
      json::Value H = json::Value::object();
      H.set("type", "campaign");
      H.set("schema", campaign::JournalSchema);
      H.set("key", CampaignKey);
      char SeedBuf[32];
      std::snprintf(SeedBuf, sizeof(SeedBuf), "0x%" PRIx64, BaseSeed);
      H.set("seed", SeedBuf);
      if (!Journal.append(H, &Err)) {
        std::fprintf(stderr, "fpint-fuzz: journal: %s\n", Err.c_str());
        return 2;
      }
    }
  }

  auto Check = [&](const sir::Module &M) {
    return Sandbox ? checkSandboxed(M, OracleOpts, TimeoutMs)
                   : checkInProcess(M, OracleOpts);
  };

  const uint64_t Total = HaveOne ? 1 : Iters;
  const uint64_t Step = UseJournal ? BatchSize : (Total ? Total : 1);
  bool Stop = false;
  for (uint64_t BatchStart = 0; BatchStart < Total && !Stop;
       BatchStart += Step) {
    const uint64_t BatchIdx = BatchStart / Step;
    const uint64_t BatchEnd = std::min(BatchStart + Step, Total);
    if (UseJournal && DoneBatches.count(BatchIdx))
      continue;
    const FuzzStats Before = Stats;
    const std::map<std::string, uint64_t> BucketsBefore = Buckets;

    for (uint64_t It = BatchStart; It < BatchEnd; ++It) {
      uint64_t ModSeed =
          HaveOne ? OneSeed : testgen::moduleSeed(BaseSeed, It);
      const std::string &PresetName =
          !Preset.empty() ? Preset : Presets[It % Presets.size()];
      testgen::GenConfig Config = testgen::presetConfig(PresetName);

      std::unique_ptr<sir::Module> M = testgen::generateModule(Config, ModSeed);
      std::string Text = sir::toString(*M);
      if (Emit)
        std::printf("# seed=0x%" PRIx64 " preset=%s\n%s\n", ModSeed,
                    PresetName.c_str(), Text.c_str());

      IterOutcome Out = Check(*M);
      ++Stats.Modules;
      Stats.DynInstrs += Out.DynInstrs;

      if (Out.K == IterOutcome::Kind::Pass)
        continue;
      if (Out.K == IterOutcome::Kind::Skip) {
        ++Stats.Skipped;
        if (!Quiet)
          std::fprintf(stderr, "skip seed=0x%" PRIx64 " iter=%" PRIu64 ": %s\n",
                       ModSeed, It, Out.SkipReason.c_str());
        continue;
      }
      if (Out.K == IterOutcome::Kind::SpawnFailed) {
        std::fprintf(stderr,
                     "fpint-fuzz: fork failed at iter %" PRIu64 "; stopping\n",
                     It);
        Exit = 2;
        Stop = true;
        break;
      }

      // A finding. Count, triage into a bucket, report.
      switch (Out.K) {
      case IterOutcome::Kind::Crash:
        ++Stats.Crashes;
        break;
      case IterOutcome::Kind::Hang:
        ++Stats.Hangs;
        break;
      default:
        ++Stats.Mismatches;
        break;
      }
      Exit = 1;
      std::string Bucket = bucketKey(Out);
      bool FirstInBucket = Buckets[Bucket]++ == 0;

      std::fprintf(stderr,
                   "%s seed=0x%" PRIx64 " iter=%" PRIu64
                   " preset=%s bucket=%s (%s)\n",
                   kindName(Out.K), ModSeed, It, PresetName.c_str(),
                   Bucket.c_str(), Out.Describe.c_str());
      if (!Out.LastStage.empty())
        std::fprintf(stderr, "  last oracle stage: %s\n", Out.LastStage.c_str());
      for (const std::string &Msg : Out.Mismatches)
        std::fprintf(stderr, "  %s\n", Msg.c_str());
      std::fprintf(stderr,
                   "  reproduce: fpint-fuzz --one 0x%" PRIx64 " --preset %s\n",
                   ModSeed, PresetName.c_str());

      if (Reduce && FirstInBucket) {
        // Shrink while the candidate stays in the same bucket. Crash and
        // hang probes run sandboxed even under --no-sandbox (an
        // in-process crash probe would kill the reducer itself); hang
        // probes get a tightened watchdog so reduction stays bounded.
        const IterOutcome::Kind WantKind = Out.K;
        const int WantSignal = Out.Signal;
        const int ProbeTimeout =
            WantKind == IterOutcome::Kind::Hang
                ? std::min(TimeoutMs, 1500)
                : TimeoutMs;
        testgen::InterestingPredicate SameBucket =
            [&](const sir::Module &Candidate) {
              IterOutcome Probe =
                  (WantKind == IterOutcome::Kind::Mismatch && !Sandbox)
                      ? checkInProcess(Candidate, OracleOpts)
                      : checkSandboxed(Candidate, OracleOpts, ProbeTimeout);
              if (Probe.K != WantKind)
                return false;
              if (WantKind == IterOutcome::Kind::Crash)
                return Probe.Signal == WantSignal;
              return true;
            };
        testgen::ReduceOutcome Reduced = testgen::reduceModule(Text, SameBucket);
        std::fprintf(stderr, "  reduced to %u instructions (%u probes)\n",
                     Reduced.InstrCount, Reduced.Probes);

        char Name[160];
        std::snprintf(Name, sizeof(Name), "seed_0x%" PRIx64 "_%s_%s.sir",
                      ModSeed, sanitizeFileName(PresetName).c_str(),
                      sanitizeFileName(Bucket).c_str());
        std::string Path = ReproDir + "/" + Name;
        std::ofstream OutFile(Path);
        if (OutFile) {
          OutFile << "# fpint-fuzz regression (auto-reduced)\n"
                  << "# kind=" << kindName(Out.K) << " bucket=" << Bucket
                  << "\n"
                  << "# seed=0x" << std::hex << ModSeed << std::dec
                  << " preset=" << PresetName << "\n"
                  << "# replay: fpint-fuzz --one 0x" << std::hex << ModSeed
                  << std::dec << " --preset " << PresetName << "\n";
          if (!Out.LastStage.empty())
            OutFile << "# last oracle stage: " << Out.LastStage << "\n";
          for (const std::string &Msg : Out.Mismatches)
            OutFile << "# " << Msg << "\n";
          OutFile << Reduced.Text;
          std::fprintf(stderr, "  repro written to %s\n", Path.c_str());
        } else {
          std::fprintf(stderr, "  could not write %s\n", Path.c_str());
        }
      }
      if (!KeepGoing) {
        Stop = true;
        break;
      }
    }

    // One fully-completed batch = one durable unit of progress. An
    // interrupted batch (finding with !KeepGoing, fork failure, or the
    // harness dying) is deliberately not journaled: the next run
    // re-executes it from its first iteration.
    if (UseJournal && !Stop) {
      json::Value R = json::Value::object();
      R.set("type", "batch");
      R.set("index", BatchIdx);
      R.set("modules", Stats.Modules - Before.Modules);
      R.set("skipped", Stats.Skipped - Before.Skipped);
      R.set("dyn_instrs", Stats.DynInstrs - Before.DynInstrs);
      R.set("mismatches", Stats.Mismatches - Before.Mismatches);
      R.set("crashes", Stats.Crashes - Before.Crashes);
      R.set("hangs", Stats.Hangs - Before.Hangs);
      R.set("exit", Exit);
      json::Value BucketDeltas = json::Value::object();
      for (const auto &B : Buckets) {
        auto PrevIt = BucketsBefore.find(B.first);
        const uint64_t Prev =
            PrevIt == BucketsBefore.end() ? 0 : PrevIt->second;
        if (B.second > Prev)
          BucketDeltas.set(B.first, B.second - Prev);
      }
      R.set("buckets", std::move(BucketDeltas));
      std::string Err;
      if (!Journal.append(R, &Err)) {
        std::fprintf(stderr, "fpint-fuzz: journal: %s\n", Err.c_str());
        Exit = 2;
        Stop = true;
      }
    }
  }

  std::printf("fpint-fuzz: %" PRIu64 " modules, %" PRIu64 " skipped, %" PRIu64
              " dynamic instructions checked, %" PRIu64
              " mismatches, %" PRIu64 " crashes, %" PRIu64
              " hangs (base seed 0x%" PRIx64 ")\n",
              Stats.Modules, Stats.Skipped, Stats.DynInstrs, Stats.Mismatches,
              Stats.Crashes, Stats.Hangs, BaseSeed);
  for (const auto &B : Buckets)
    std::printf("  bucket %s: %" PRIu64 " hit(s)\n", B.first.c_str(),
                B.second);
  return Exit;
}
