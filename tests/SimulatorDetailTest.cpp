//===- tests/SimulatorDetailTest.cpp - Resource-limit behaviours ----------===//

#include "core/Pipeline.h"
#include "sir/Parser.h"
#include "timing/Simulator.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::core;
using namespace fpint::timing;

namespace {

PipelineRun compileSrc(const std::string &Src, partition::Scheme S) {
  sir::ParseResult PR = sir::parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error;
  PipelineConfig Cfg;
  Cfg.Scheme = S;
  // These kernels probe the simulator with hand-shaped dependence
  // patterns; the optimizer would constant-fold them away.
  Cfg.RunOptimizations = false;
  PipelineRun Run = compileAndMeasure(*PR.M, Cfg);
  EXPECT_TRUE(Run.ok()) << (Run.Errors.empty() ? "?" : Run.Errors[0]);
  return Run;
}

/// Wide independent integer work: 16 parallel accumulator chains.
std::string wideKernel() {
  std::string Src = "func main() {\nentry:\n";
  for (int C = 0; C < 16; ++C)
    Src += "  li %a" + std::to_string(C) + ", " + std::to_string(C) + "\n";
  Src += "  li %i, 0\nloop:\n";
  for (int C = 0; C < 16; ++C)
    Src += "  addi %a" + std::to_string(C) + ", %a" + std::to_string(C) +
           ", 3\n";
  Src += "  addi %i, %i, 1\n  slti %t, %i, 200\n  bne %t, %zero, loop\n";
  for (int C = 0; C < 16; ++C)
    Src += "  out %a" + std::to_string(C) + "\n";
  Src += "  ret\n}\n";
  return Src;
}

TEST(SimulatorDetail, MoreIntUnitsHelpWideCode) {
  PipelineRun Run = compileSrc(wideKernel(), partition::Scheme::None);
  MachineConfig Two = MachineConfig::fourWay();
  Two.FpaEnabled = false;
  MachineConfig SixUnits = Two;
  SixUnits.IntUnits = 6;
  SixUnits.FetchWidth = SixUnits.DecodeWidth = SixUnits.RetireWidth = 8;
  SixUnits.IntWindow = 32;
  SixUnits.MaxInFlight = 64;
  SixUnits.IntPhysRegs = 96;
  SimStats S2 = simulate(Run, Two);
  SimStats S6 = simulate(Run, SixUnits);
  EXPECT_LT(S6.Cycles, S2.Cycles);
}

TEST(SimulatorDetail, PhysicalRegisterPressureStalls) {
  PipelineRun Run = compileSrc(wideKernel(), partition::Scheme::None);
  MachineConfig Normal = MachineConfig::fourWay();
  Normal.FpaEnabled = false;
  MachineConfig Starved = Normal;
  // 33 physical registers leave a single rename slot past the 32
  // architectural ones.
  Starved.IntPhysRegs = 33;
  SimStats SN = simulate(Run, Normal);
  SimStats SS = simulate(Run, Starved);
  EXPECT_GT(SS.Cycles, SN.Cycles);
  EXPECT_EQ(SS.Instructions, SN.Instructions);
}

TEST(SimulatorDetail, TinyWindowSerializes) {
  PipelineRun Run = compileSrc(wideKernel(), partition::Scheme::None);
  MachineConfig Normal = MachineConfig::fourWay();
  Normal.FpaEnabled = false;
  MachineConfig Tiny = Normal;
  Tiny.IntWindow = 2;
  SimStats SN = simulate(Run, Normal);
  SimStats ST = simulate(Run, Tiny);
  EXPECT_GT(ST.Cycles, SN.Cycles);
}

TEST(SimulatorDetail, LoadStorePortsGateMemoryTraffic) {
  std::string Src = R"(
global buf 64

func main() {
entry:
  li %i, 0
  la %b, buf
loop:
  sw %i, 0(%b)
  sw %i, 4(%b)
  sw %i, 8(%b)
  sw %i, 12(%b)
  addi %i, %i, 1
  slti %t, %i, 500
  bne %t, %zero, loop
  lw %o, buf
  out %o
  ret
}
)";
  PipelineRun Run = compileSrc(Src, partition::Scheme::None);
  // Give the machine enough ALUs that the load/store ports, not the
  // functional units, are the scarce resource.
  MachineConfig OnePort = MachineConfig::fourWay();
  OnePort.FpaEnabled = false;
  OnePort.IntUnits = 6;
  OnePort.FetchWidth = OnePort.DecodeWidth = OnePort.RetireWidth = 8;
  MachineConfig TwoPorts = OnePort;
  TwoPorts.LoadStorePorts = 2;
  SimStats S1 = simulate(Run, OnePort);
  SimStats S2 = simulate(Run, TwoPorts);
  EXPECT_GT(S1.Cycles, S2.Cycles);
}

TEST(SimulatorDetail, DividerIsUnpipelined) {
  // Independent divides: with one shared divider busy 12 cycles each,
  // throughput is ~12 cycles per divide even though they are
  // independent.
  std::string Src = "func main() {\nentry:\n  li %a, 1000000\n  li %b, "
                    "3\n";
  for (int I = 0; I < 100; ++I)
    Src += "  div %q" + std::to_string(I) + ", %a, %b\n";
  Src += "  out %q99\n  ret\n}\n";
  PipelineRun Run = compileSrc(Src, partition::Scheme::None);
  MachineConfig M = MachineConfig::fourWay();
  M.FpaEnabled = false;
  SimStats S = simulate(Run, M);
  // 100 divides on 2 INT units, each occupying its unit for 12 cycles:
  // at least ~600 cycles.
  EXPECT_GT(S.Cycles, 550u);
}

TEST(SimulatorDetail, LoadsWaitForPriorStoreAddresses) {
  // Table 1: "loads may execute when prior store addresses are known".
  // Two versions of the same loop: in Blocked, an independent load
  // follows a store whose address hangs off a slow multiply chain and
  // so must wait; in Free, the load precedes the store. The blocked
  // version must be measurably slower on an otherwise identical
  // machine.
  // The loaded value feeds the next iteration's slow store-address
  // chain, so when the load sits *behind* the store it inherits the
  // multiply latency every iteration; hoisted above the store it
  // issues immediately and the loop runs at dispatch pace.
  auto Build = [](bool StoreFirst) {
    std::string Store = "  sw %i, 0(%ea)\n";
    std::string Load = "  lw %v, 0(%o)\n";
    std::string Src = R"(
global buf 64
global other 4 = 77

func main() {
entry:
  li %i, 0
  li %v, 1
  la %b, buf
  la %o, other
loop:
  mul %slow1, %v, %v
  mul %slow2, %slow1, %v
  andi %off, %slow2, 63
  add %ea, %b, %off
)";
    Src += StoreFirst ? Store + Load : Load + Store;
    Src += R"(  addi %i, %i, 1
  slti %t, %i, 300
  bne %t, %zero, loop
  out %v
  ret
}
)";
    return Src;
  };
  MachineConfig M = MachineConfig::fourWay();
  M.FpaEnabled = false;
  PipelineRun Blocked = compileSrc(Build(true), partition::Scheme::None);
  PipelineRun Free = compileSrc(Build(false), partition::Scheme::None);
  SimStats SB = simulate(Blocked, M);
  SimStats SF = simulate(Free, M);
  EXPECT_GT(SB.Cycles, SF.Cycles + 1000)
      << "blocked=" << SB.Cycles << " free=" << SF.Cycles;
}

TEST(SimulatorDetail, FpaTrafficUsesFpWindowNotInt) {
  // A partitioned kernel's FPa instructions must not consume INT issue
  // slots: INT issue count equals the non-FPa instruction count.
  std::string Src = R"(
global g 4 = 3

func main() {
entry:
  li %i, 0
loop:
  lw %v, g
  addi %w, %v, 1
  sw %w, g
  addi %i, %i, 1
  slti %t, %i, 100
  bne %t, %zero, loop
  lw %o, g
  out %o
  ret
}
)";
  PipelineRun Run = compileSrc(Src, partition::Scheme::Basic);
  SimStats S = simulate(Run, MachineConfig::fourWay());
  EXPECT_GT(S.FpIssued, 0u);
  EXPECT_EQ(S.IntIssued + S.FpIssued, S.Instructions);
}

TEST(SimulatorDetail, EmptyTrace) {
  PipelineRun Run = compileSrc("func main() {\nentry:\n  ret\n}\n",
                               partition::Scheme::None);
  SimStats S = simulate(Run, MachineConfig::fourWay());
  EXPECT_EQ(S.Instructions, 1u); // Just the ret.
  EXPECT_GT(S.Cycles, 0u);
}

} // namespace
