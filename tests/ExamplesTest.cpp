//===- tests/ExamplesTest.cpp - Shipped .sir programs stay valid ----------===//

#include "core/Pipeline.h"
#include "sir/Parser.h"
#include "sir/Verifier.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#ifndef FPINT_SOURCE_DIR
#define FPINT_SOURCE_DIR "."
#endif

using namespace fpint;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

class ShippedExamples : public ::testing::TestWithParam<const char *> {};

TEST_P(ShippedExamples, ParseVerifyAndSurviveThePipeline) {
  std::string Path =
      std::string(FPINT_SOURCE_DIR) + "/examples/sir/" + GetParam();
  sir::ParseResult PR = sir::parseModule(readFile(Path));
  ASSERT_TRUE(PR.ok()) << GetParam() << ": " << PR.Error << " at line "
                       << PR.Line;
  EXPECT_TRUE(sir::verify(*PR.M).empty()) << GetParam();

  for (int S = 0; S < 3; ++S) {
    core::PipelineConfig Cfg;
    Cfg.Scheme = static_cast<partition::Scheme>(S);
    core::PipelineRun Run = core::compileAndMeasure(*PR.M, Cfg);
    ASSERT_TRUE(Run.ok()) << GetParam() << "/"
                          << partition::schemeName(Cfg.Scheme) << ": "
                          << (Run.Errors.empty() ? "output mismatch"
                                                 : Run.Errors[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Files, ShippedExamples,
                         ::testing::Values("vector_sum.sir",
                                           "invalidate_for_call.sir",
                                           "fir_filter.sir"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           return Name.substr(0, Name.find('.'));
                         });

} // namespace
