//===- tests/ServeTest.cpp - Compilation-as-a-service layer ---------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve subsystem end to end: wire framing round-trips, strict
/// request validation, the content-addressed disk cache (round-trip,
/// schema-stamp self-invalidation, eviction, key stability), and the
/// Server engine -- oversized/malformed requests answered without
/// taking the connection loop down, restart-stable disk hits, and
/// byte-identical bodies under concurrent clients.
///
//===----------------------------------------------------------------------===//

#include "serve/DiskCache.h"
#include "serve/Protocol.h"
#include "serve/Server.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace fpint;
using namespace fpint::serve;
namespace fs = std::filesystem;

namespace {

/// A unique per-test scratch directory, removed on scope exit.
struct TempDir {
  std::string Path;
  explicit TempDir(const char *Tag) {
    Path = (fs::temp_directory_path() /
            (std::string("fpint_serve_test_") + Tag + "_" +
             std::to_string(getpid())))
               .string();
    fs::remove_all(Path);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
};

std::string compileRequest(const char *ModuleText, const char *Scheme,
                           bool Simulate = true) {
  json::Value Pipeline = json::Value::object();
  Pipeline.set("scheme", Scheme);
  json::Value Doc = json::Value::object();
  Doc.set("op", "compile");
  Doc.set("module", ModuleText);
  Doc.set("pipeline", std::move(Pipeline));
  Doc.set("simulate", Simulate);
  return Doc.dump();
}

/// Parses a response document and returns (body dump, cache tier,
/// body status).
struct Parsed {
  std::string Body;
  std::string Tier;
  std::string Status;
  std::string ErrorKind;
};

Parsed parseResponse(const std::string &Text) {
  Parsed P;
  json::Value Doc;
  std::string Err;
  EXPECT_TRUE(json::Value::parse(Text, Doc, &Err)) << Err;
  EXPECT_EQ(Doc.strOr("schema", ""), "fpint-serve-response-v1");
  if (const json::Value *Cache = Doc.find("cache"))
    P.Tier = Cache->strOr("tier", "");
  if (const json::Value *Body = Doc.find("body")) {
    P.Body = Body->dump();
    P.Status = Body->strOr("status", "");
    if (const json::Value *E = Body->find("error"))
      P.ErrorKind = E->strOr("kind", "");
  }
  return P;
}

ServerOptions quickOptions(const std::string &CacheDir, bool Sandbox) {
  ServerOptions O;
  O.CacheDir = CacheDir;
  O.Sandbox = Sandbox;
  O.SandboxWallMs = 20000;
  return O;
}

//===----------------------------------------------------------------------===//
// Framing.
//===----------------------------------------------------------------------===//

TEST(Frame, RoundTripsPayloadsIncludingEmpty) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  for (const std::string &Payload :
       {std::string(""), std::string("{}"), std::string(4096, 'x')}) {
    ASSERT_TRUE(writeFrame(Fds[1], Payload));
    std::string Got;
    ASSERT_EQ(readFrame(Fds[0], 1 << 20, Got), FrameStatus::Ok);
    EXPECT_EQ(Got, Payload);
  }
  close(Fds[1]);
  std::string Got;
  EXPECT_EQ(readFrame(Fds[0], 1 << 20, Got), FrameStatus::Eof);
  close(Fds[0]);
}

TEST(Frame, DetectsTruncationMidHeaderAndMidPayload) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  // Two header bytes, then EOF.
  ASSERT_EQ(write(Fds[1], "\x08\x00", 2), 2);
  close(Fds[1]);
  std::string Got;
  EXPECT_EQ(readFrame(Fds[0], 1 << 20, Got), FrameStatus::Truncated);
  close(Fds[0]);

  ASSERT_EQ(pipe(Fds), 0);
  // Full header declaring 8 bytes, only 3 delivered. (Split literal:
  // 'abc' are hex digits and would extend a trailing \x escape.)
  ASSERT_EQ(write(Fds[1], "\x08\x00\x00\x00" "abc", 7), 7);
  close(Fds[1]);
  EXPECT_EQ(readFrame(Fds[0], 1 << 20, Got), FrameStatus::Truncated);
  close(Fds[0]);
}

TEST(Frame, RejectsOversizedDeclaredLength) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  ASSERT_TRUE(writeFrame(Fds[1], std::string(256, 'y')));
  std::string Got;
  EXPECT_EQ(readFrame(Fds[0], 64, Got), FrameStatus::Oversized);
  close(Fds[0]);
  close(Fds[1]);
}

//===----------------------------------------------------------------------===//
// Strict request validation.
//===----------------------------------------------------------------------===//

TEST(ParseRequest, RejectsUnknownMembersAnywhere) {
  Request Req;
  std::string Err;
  EXPECT_FALSE(parseRequest("{\"op\": \"ping\", \"schme\": \"basic\"}", Req,
                            Err));
  EXPECT_NE(Err.find("schme"), std::string::npos);

  Err.clear();
  EXPECT_FALSE(parseRequest("{\"op\": \"compile\", \"module\": \"m\", "
                            "\"pipeline\": {\"shceme\": \"basic\"}}",
                            Req, Err));
  EXPECT_NE(Err.find("shceme"), std::string::npos);

  Err.clear();
  EXPECT_FALSE(parseRequest("{\"op\": \"compile\", \"module\": \"m\", "
                            "\"machine\": {\"bse\": \"4-way\"}}",
                            Req, Err));
  EXPECT_NE(Err.find("bse"), std::string::npos);
}

TEST(ParseRequest, RejectsBadValuesAndMissingModule) {
  Request Req;
  std::string Err;
  EXPECT_FALSE(parseRequest("not json at all", Req, Err));
  EXPECT_FALSE(parseRequest("[1, 2]", Req, Err));
  EXPECT_FALSE(parseRequest("{\"op\": \"frobnicate\"}", Req, Err));
  EXPECT_FALSE(parseRequest("{\"op\": \"compile\"}", Req, Err));
  EXPECT_FALSE(parseRequest("{\"op\": \"compile\", \"module\": \"\"}", Req,
                            Err));
  EXPECT_FALSE(parseRequest("{\"op\": \"compile\", \"module\": 7}", Req,
                            Err));
  EXPECT_FALSE(parseRequest("{\"op\": \"compile\", \"module\": \"m\", "
                            "\"pipeline\": {\"scheme\": \"turbo\"}}",
                            Req, Err));
  EXPECT_FALSE(parseRequest("{\"op\": \"compile\", \"module\": \"m\", "
                            "\"machine\": {\"base\": \"16-way\"}}",
                            Req, Err));
  // The regalloc backend must name a registered allocator.
  Err.clear();
  EXPECT_FALSE(parseRequest("{\"op\": \"compile\", \"module\": \"m\", "
                            "\"pipeline\": {\"regalloc\": \"turbo\"}}",
                            Req, Err));
  EXPECT_NE(Err.find("turbo"), std::string::npos);
  // 'module' is compile-only.
  EXPECT_FALSE(parseRequest("{\"op\": \"ping\", \"module\": \"m\"}", Req,
                            Err));
}

TEST(ParseRequest, AcceptsFullCompileRequest) {
  Request Req;
  std::string Err;
  ASSERT_TRUE(parseRequest(
      "{\"op\": \"compile\", \"module\": \"func main() {}\", "
      "\"name\": \"demo\", "
      "\"pipeline\": {\"scheme\": \"advanced\", "
      "\"regalloc\": \"regalloc-linear\", "
      "\"costs\": {\"copy_overhead\": 2.5}, \"ref_args\": [3, 4]}, "
      "\"machine\": {\"base\": \"8-way\", \"fp_units\": 3}, "
      "\"simulate\": false}",
      Req, Err))
      << Err;
  EXPECT_EQ(Req.Op, RequestOp::Compile);
  EXPECT_EQ(Req.Name, "demo");
  EXPECT_EQ(Req.Pipeline.Scheme, partition::Scheme::Advanced);
  EXPECT_EQ(Req.Pipeline.RegAllocator, "regalloc-linear");
  EXPECT_EQ(Req.Pipeline.Costs.CopyOverhead, 2.5);
  ASSERT_EQ(Req.Pipeline.RefArgs.size(), 2u);
  EXPECT_EQ(Req.Pipeline.RefArgs[1], 4);
  EXPECT_EQ(Req.Machine.FpUnits, 3u);
  EXPECT_FALSE(Req.Simulate);
}

TEST(ParseRequest, ErrorKindCacheabilityIsTyped) {
  for (const char *Kind : {"parse_error", "compile_error", "overrun"})
    EXPECT_TRUE(isDeterministicErrorKind(Kind)) << Kind;
  for (const char *Kind :
       {"bad_request", "crash", "timeout", "spawn_failed", "internal", ""})
    EXPECT_FALSE(isDeterministicErrorKind(Kind)) << Kind;
}

//===----------------------------------------------------------------------===//
// The content-addressed disk cache.
//===----------------------------------------------------------------------===//

TEST(DiskCacheTest, KeysAreStableAndContentAddressed) {
  const std::string K1 = DiskCache::key("module a", "pipe", "mach");
  EXPECT_EQ(K1.size(), 16u);
  EXPECT_EQ(K1, DiskCache::key("module a", "pipe", "mach"));
  EXPECT_NE(K1, DiskCache::key("module b", "pipe", "mach"));
  EXPECT_NE(K1, DiskCache::key("module a", "pipe2", "mach"));
  EXPECT_NE(K1, DiskCache::key("module a", "pipe", "mach2"));
  // Separator injection: moving bytes across field boundaries must
  // change the key.
  EXPECT_NE(DiskCache::key("ab", "c", "d"), DiskCache::key("a", "bc", "d"));
}

TEST(DiskCacheTest, PutGetRoundTripsAcrossInstances) {
  TempDir Dir("diskcache");
  const std::string Key = DiskCache::key("m", "p", "mc");
  {
    DiskCache Cache({Dir.Path, 64});
    std::string Body;
    EXPECT_FALSE(Cache.get(Key, Body));
    EXPECT_TRUE(Cache.put(Key, "{\"status\": \"ok\"}"));
    EXPECT_TRUE(Cache.get(Key, Body));
    EXPECT_EQ(Cache.counters().Hits, 1u);
    EXPECT_EQ(Cache.counters().Misses, 1u);
    EXPECT_EQ(Cache.counters().Stores, 1u);
  }
  // A fresh instance (fresh process in production) sees the entry.
  DiskCache Cache2({Dir.Path, 64});
  EXPECT_EQ(Cache2.entryCount(), 1u);
  std::string Body;
  ASSERT_TRUE(Cache2.get(Key, Body));
  json::Value Doc;
  std::string Err;
  ASSERT_TRUE(json::Value::parse(Body, Doc, &Err)) << Err;
  EXPECT_EQ(Doc.strOr("status", ""), "ok");
}

TEST(DiskCacheTest, MalformedBodiesAreNotPublishable) {
  TempDir Dir("diskcache_badbody");
  DiskCache Cache({Dir.Path, 64});
  EXPECT_FALSE(Cache.put("0123456789abcdef", "not json"));
  EXPECT_EQ(Cache.counters().Stores, 0u);
}

TEST(DiskCacheTest, StaleSchemaStampSelfInvalidates) {
  TempDir Dir("diskcache_stale");
  DiskCache Cache({Dir.Path, 64});
  const std::string Key = DiskCache::key("m", "p", "mc");
  ASSERT_TRUE(Cache.put(Key, "{\"status\": \"ok\"}"));

  // Rewrite the entry as if an older build with a different schema
  // stamp had produced it.
  const std::string Path =
      Dir.Path + "/" + Key.substr(0, 2) + "/" + Key + ".json";
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << "{\"cache_schema\": \"fpint-serve-response-v0/old\", \"key\": \""
        << Key << "\", \"body\": {\"status\": \"ok\"}}\n";
  }
  std::string Body;
  EXPECT_FALSE(Cache.get(Key, Body));
  EXPECT_EQ(Cache.counters().Invalidations, 1u);
  EXPECT_FALSE(fs::exists(Path)); // Reclaimed, not re-served.
}

TEST(DiskCacheTest, EvictionKeepsEntryCountBounded) {
  TempDir Dir("diskcache_evict");
  DiskCache Cache({Dir.Path, 4});
  for (int I = 0; I < 10; ++I)
    ASSERT_TRUE(Cache.put(DiskCache::key("m" + std::to_string(I), "p", "mc"),
                          "{\"status\": \"ok\"}"));
  EXPECT_LE(Cache.entryCount(), 4u);
  EXPECT_GE(Cache.counters().Evictions, 6u);
}

//===----------------------------------------------------------------------===//
// The request engine.
//===----------------------------------------------------------------------===//

TEST(ServeTest, PingAndStatsOps) {
  TempDir Dir("server_ops");
  Server S(quickOptions(Dir.Path, /*Sandbox=*/false));
  Parsed Ping = parseResponse(S.handleRequest("{\"op\": \"ping\"}"));
  EXPECT_EQ(Ping.Status, "ok");
  EXPECT_EQ(Ping.Tier, "none");

  Parsed Stats = parseResponse(S.handleRequest("{\"op\": \"stats\"}"));
  EXPECT_EQ(Stats.Status, "ok");
  json::Value Body;
  std::string Err;
  ASSERT_TRUE(json::Value::parse(Stats.Body, Body, &Err));
  EXPECT_EQ(Body.find("result")->numberOr("requests", -1), 2);
}

TEST(ServeTest, CompileMissThenMemoryHitByteIdentical) {
  TempDir Dir("server_basic");
  Server S(quickOptions(Dir.Path, /*Sandbox=*/false));
  const std::string Req = compileRequest(fixtures::IntVectorSum, "basic");

  Parsed Cold = parseResponse(S.handleRequest(Req));
  EXPECT_EQ(Cold.Status, "ok") << Cold.Body;
  EXPECT_EQ(Cold.Tier, "none");
  json::Value Body;
  std::string Err;
  ASSERT_TRUE(json::Value::parse(Cold.Body, Body, &Err));
  const json::Value *Result = Body.find("result");
  ASSERT_NE(Result, nullptr);
  EXPECT_GT(Result->find("stats")->numberOr("cycles", 0), 0);
  // The body is content-addressed: volatile wall-clock must be zero.
  EXPECT_EQ(Result->find("stats")->numberOr("sim_wall_ms", -1), 0);

  Parsed Warm = parseResponse(S.handleRequest(Req));
  EXPECT_EQ(Warm.Tier, "memory");
  EXPECT_EQ(Warm.Body, Cold.Body);

  Server::Counters C = S.counters();
  EXPECT_EQ(C.Misses, 1u);
  EXPECT_EQ(C.MemHits, 1u);
}

TEST(ServeTest, RestartServesFromDiskWithIdenticalBody) {
  TempDir Dir("server_restart");
  const std::string Req = compileRequest(fixtures::IntVectorSum, "advanced");
  std::string ColdBody;
  {
    Server S(quickOptions(Dir.Path, /*Sandbox=*/false));
    Parsed Cold = parseResponse(S.handleRequest(Req));
    EXPECT_EQ(Cold.Status, "ok") << Cold.Body;
    ColdBody = Cold.Body;
  }
  // A new engine on the same store (a daemon restart): first touch is
  // a disk hit with a byte-identical body, then memory.
  Server S2(quickOptions(Dir.Path, /*Sandbox=*/false));
  Parsed AfterRestart = parseResponse(S2.handleRequest(Req));
  EXPECT_EQ(AfterRestart.Tier, "disk");
  EXPECT_EQ(AfterRestart.Body, ColdBody);
  Parsed Again = parseResponse(S2.handleRequest(Req));
  EXPECT_EQ(Again.Tier, "memory");
  EXPECT_EQ(Again.Body, ColdBody);
}

TEST(ServeTest, SandboxedExecutionMatchesInProcess) {
  TempDir DirA("server_sandboxed");
  TempDir DirB("server_inproc");
  const std::string Req = compileRequest(fixtures::IntVectorSum, "basic");
  Server Sandboxed(quickOptions(DirA.Path, /*Sandbox=*/true));
  Server InProcess(quickOptions(DirB.Path, /*Sandbox=*/false));
  Parsed A = parseResponse(Sandboxed.handleRequest(Req));
  Parsed B = parseResponse(InProcess.handleRequest(Req));
  EXPECT_EQ(A.Status, "ok") << A.Body;
  EXPECT_EQ(A.Body, B.Body);
}

TEST(ServeTest, DeterministicErrorsAreCachedTransportOnesAreNot) {
  TempDir Dir("server_errors");
  Server S(quickOptions(Dir.Path, /*Sandbox=*/false));

  // A sir parse error is a pure function of the module: cached.
  const std::string BadModule = compileRequest("func main( {", "none");
  Parsed E1 = parseResponse(S.handleRequest(BadModule));
  EXPECT_EQ(E1.Status, "error");
  EXPECT_EQ(E1.ErrorKind, "parse_error");
  Parsed E2 = parseResponse(S.handleRequest(BadModule));
  EXPECT_EQ(E2.Tier, "memory");
  EXPECT_EQ(E2.Body, E1.Body);

  // A bad request never reaches the cache (and is typed).
  Parsed Bad = parseResponse(S.handleRequest("{\"op\": \"compile\"}"));
  EXPECT_EQ(Bad.ErrorKind, "bad_request");
  EXPECT_EQ(Bad.Tier, "none");
  EXPECT_EQ(S.counters().BadRequests, 1u);

  // simulate=true without register allocation cannot produce a trace.
  json::Value Pipeline = json::Value::object();
  Pipeline.set("scheme", "none");
  Pipeline.set("run_register_allocation", false);
  json::Value Doc = json::Value::object();
  Doc.set("op", "compile");
  Doc.set("module", fixtures::IntVectorSum);
  Doc.set("pipeline", std::move(Pipeline));
  Parsed NoRa = parseResponse(S.handleRequest(Doc.dump()));
  EXPECT_EQ(NoRa.ErrorKind, "bad_request");
}

//===----------------------------------------------------------------------===//
// Connection loop.
//===----------------------------------------------------------------------===//

/// Runs serveConnection on one end of a socketpair in a thread and
/// returns the client end.
struct ConnectionHarness {
  Server &S;
  int ClientFd = -1;
  std::thread Worker;
  bool CleanEof = false;

  explicit ConnectionHarness(Server &Srv) : S(Srv) {
    int Fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    ClientFd = Fds[0];
    int ServerFd = Fds[1];
    Worker = std::thread([this, ServerFd] {
      CleanEof = S.serveConnection(ServerFd);
      close(ServerFd);
    });
  }
  ~ConnectionHarness() {
    if (ClientFd >= 0)
      close(ClientFd);
    if (Worker.joinable())
      Worker.join();
  }
  void closeClient() {
    close(ClientFd);
    ClientFd = -1;
  }
};

TEST(ServeTest, MalformedJsonAnsweredAndConnectionStaysOpen) {
  TempDir Dir("conn_malformed");
  Server S(quickOptions(Dir.Path, /*Sandbox=*/false));
  ConnectionHarness Conn(S);

  ASSERT_TRUE(writeFrame(Conn.ClientFd, "this is not json"));
  std::string Resp;
  ASSERT_EQ(readFrame(Conn.ClientFd, 1 << 20, Resp), FrameStatus::Ok);
  EXPECT_EQ(parseResponse(Resp).ErrorKind, "bad_request");

  // The stream is still framed; the next request is served normally.
  ASSERT_TRUE(writeFrame(Conn.ClientFd, "{\"op\": \"ping\"}"));
  ASSERT_EQ(readFrame(Conn.ClientFd, 1 << 20, Resp), FrameStatus::Ok);
  EXPECT_EQ(parseResponse(Resp).Status, "ok");

  Conn.closeClient();
  Conn.Worker.join();
  EXPECT_TRUE(Conn.CleanEof);
}

TEST(ServeTest, OversizedRequestAnsweredThenConnectionClosed) {
  TempDir Dir("conn_oversized");
  ServerOptions Opts = quickOptions(Dir.Path, /*Sandbox=*/false);
  Opts.MaxRequestBytes = 128;
  Server S(Opts);
  {
    ConnectionHarness Conn(S);
    ASSERT_TRUE(writeFrame(Conn.ClientFd, std::string(4096, 'z')));
    std::string Resp;
    ASSERT_EQ(readFrame(Conn.ClientFd, 1 << 20, Resp), FrameStatus::Ok);
    EXPECT_EQ(parseResponse(Resp).ErrorKind, "bad_request");
    // The server hung up: the unframable stream cannot continue. The
    // close happens with our unread payload still buffered, so the
    // client may see a reset (IoError) rather than a clean EOF.
    EXPECT_NE(readFrame(Conn.ClientFd, 1 << 20, Resp), FrameStatus::Ok);
    Conn.Worker.join();
    EXPECT_FALSE(Conn.CleanEof);
  }
  // The engine survived; a fresh connection is served normally.
  ConnectionHarness Conn2(S);
  ASSERT_TRUE(writeFrame(Conn2.ClientFd, "{\"op\": \"ping\"}"));
  std::string Resp;
  ASSERT_EQ(readFrame(Conn2.ClientFd, 1 << 20, Resp), FrameStatus::Ok);
  EXPECT_EQ(parseResponse(Resp).Status, "ok");
}

TEST(ServeTest, TruncatedStreamDoesNotKillTheEngine) {
  TempDir Dir("conn_truncated");
  Server S(quickOptions(Dir.Path, /*Sandbox=*/false));
  {
    ConnectionHarness Conn(S);
    // Half a header, then hang up.
    ASSERT_EQ(write(Conn.ClientFd, "\xff\x00", 2), 2);
    Conn.closeClient();
    Conn.Worker.join();
    EXPECT_FALSE(Conn.CleanEof);
  }
  ConnectionHarness Conn2(S);
  ASSERT_TRUE(writeFrame(Conn2.ClientFd, "{\"op\": \"ping\"}"));
  std::string Resp;
  ASSERT_EQ(readFrame(Conn2.ClientFd, 1 << 20, Resp), FrameStatus::Ok);
  EXPECT_EQ(parseResponse(Resp).Status, "ok");
}

//===----------------------------------------------------------------------===//
// Concurrency.
//===----------------------------------------------------------------------===//

TEST(ServeTest, ConcurrentClientsGetByteIdenticalBodies) {
  TempDir Dir("server_concurrent");
  Server S(quickOptions(Dir.Path, /*Sandbox=*/false));

  // Reference bodies, computed serially.
  const std::vector<std::string> Requests = {
      compileRequest(fixtures::IntVectorSum, "none"),
      compileRequest(fixtures::IntVectorSum, "basic"),
      compileRequest(fixtures::IntVectorSum, "advanced"),
      compileRequest(fixtures::InvalidateForCall, "basic"),
  };
  std::map<std::string, std::string> Reference;
  {
    TempDir RefDir("server_concurrent_ref");
    Server RefServer(quickOptions(RefDir.Path, /*Sandbox=*/false));
    for (const std::string &R : Requests)
      Reference[R] = parseResponse(RefServer.handleRequest(R)).Body;
  }

  constexpr unsigned NumThreads = 8, PerThread = 12;
  std::atomic<unsigned> Mismatches{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I < PerThread; ++I) {
        const std::string &R = Requests[(T + I) % Requests.size()];
        Parsed P = parseResponse(S.handleRequest(R));
        if (P.Body != Reference[R] || P.Status != "ok")
          Mismatches.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0u);

  Server::Counters C = S.counters();
  EXPECT_EQ(C.Requests, NumThreads * PerThread);
  // Cold keys can be computed by several racing clients before the
  // first publish lands (the publishes are byte-identical and atomic,
  // so this only costs duplicate work), but once warm every request
  // must hit: misses are bounded by the racing thread count.
  EXPECT_GE(C.Misses, Requests.size());
  EXPECT_LE(C.Misses, Requests.size() * NumThreads);
  EXPECT_EQ(C.MemHits + C.DiskHits + C.Misses, C.Requests);
}

} // namespace
