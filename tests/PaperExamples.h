//===- tests/PaperExamples.h - Shared program fixtures from the paper -----===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sir transcriptions of the paper's running examples, shared by the
/// analysis and partitioning tests:
///
///  * Figure 2: floating-point / integer vector sum.
///  * Figure 3: the invalidate_for_call fragment from gcc, whose RDG the
///    paper draws and partitions in Figures 4-6.
///
//===----------------------------------------------------------------------===//

#ifndef FPINT_TESTS_PAPEREXAMPLES_H
#define FPINT_TESTS_PAPEREXAMPLES_H

namespace fpint {
namespace fixtures {

/// Integer vector sum c[] = a[] + b[] (the integer variant of the
/// paper's Figure 2 example). The add feeding only the store value is
/// offloadable without copies.
inline const char *IntVectorSum = R"(
global a 16 = 3 1 4 1 5 9 2 6 5 3 5 8 9 7 9 3
global b 16 = 2 7 1 8 2 8 1 8 2 8 4 5 9 0 4 5
global c 16

func main() {
entry:
  li %i, 0
  li %n, 16
  la %pa, a
  la %pb, b
  la %pc, c
loop:
  sll %off, %i, 2
  add %ea, %pa, %off
  lw %va, 0(%ea)
  add %eb, %pb, %off
  lw %vb, 0(%eb)
  add %vc, %va, %vb
  add %ec, %pc, %off
  sw %vc, 0(%ec)
  addi %i, %i, 1
  slt %t, %i, %n
  bne %t, %zero, loop
  li %j, 0
check:
  sll %joff, %j, 2
  add %ej, %pc, %joff
  lw %vj, 0(%ej)
  out %vj
  addi %j, %j, 1
  slt %t2, %j, %n
  bne %t2, %zero, check
  ret
}
)";

/// The paper's Figure 3: the invalidate_for_call loop from gcc.
///
///   for (regno = 0; regno < 66; regno++)
///     if (regs_invalidated_by_call & (1 << regno)) {
///       delete_equiv_reg(regno);
///       if (reg_tick[regno] >= 0) reg_tick[regno]++;
///     }
///
/// Instruction roles follow the paper's numbering in comments. The value
/// component {I11v, I12, I13, I14v} is offloadable by the basic scheme;
/// the branch slices through regno require copies or duplication
/// (Figures 5 and 6).
inline const char *InvalidateForCall = R"(
global regs_invalidated_by_call 1 = 151065093
global reg_tick 66 = -3 5 0 -1 2 9 -2 4 1 0 7 -5 3 3 -9 2
global deleted_count 1

func delete_equiv_reg(%regno) {
entry:
  lw %c, deleted_count
  addi %c1, %c, 1
  sw %c1, deleted_count
  ret
}

func main() {
entry:
  li %regno, 0                              # I1
loop:
  lw %mask, regs_invalidated_by_call        # I2
  srav %bit, %mask, %regno                  # I3
  andi %b1, %bit, 1                         # I4
  beq %b1, %zero, skip                      # I5
  move %arg, %regno                         # I6
  call delete_equiv_reg(%arg)               # I7
  la %base, reg_tick                        # I8 (address of reg_tick)
  sll %idx, %regno, 2                       # I9
  add %ea, %base, %idx                      # I10
  lw %tick, 0(%ea)                          # I11
  bltz %tick, skip                          # I12
  addi %tick1, %tick, 1                     # I13
  sw %tick1, 0(%ea)                         # I14
skip:
  addi %regno, %regno, 1                    # I15
  slti %t, %regno, 66                       # I16
  bne %t, %zero, loop                       # I17
  lw %dc, deleted_count
  out %dc
  li %k, 0
dump:
  la %rb, reg_tick
  sll %ko, %k, 2
  add %ke, %rb, %ko
  lw %kv, 0(%ke)
  out %kv
  addi %k, %k, 1
  slti %kt, %k, 16
  bne %kt, %zero, dump
  ret
}
)";

/// A memory-free pseudo-random generator, like the paper's note about
/// compress's rand function: the partitioner moves essentially the whole
/// loop to FPa because nothing touches memory.
inline const char *MemoryFreeRand = R"(
func main() {
entry:
  li %seed, 12345
  li %i, 0
loop:
  sll %a, %seed, 13
  xor %b, %seed, %a
  srl %c, %b, 17
  xor %d, %b, %c
  sll %e, %d, 5
  xor %seed2, %d, %e
  move %seed, %seed2
  addi %i, %i, 1
  slti %t, %i, 50
  bne %t, %zero, loop
  out %seed
  ret
}
)";

} // namespace fixtures
} // namespace fpint

#endif // FPINT_TESTS_PAPEREXAMPLES_H
