//===- tests/WorkloadTest.cpp - Synthetic SPEC stand-ins ------------------===//

#include "core/Pipeline.h"
#include "sir/Verifier.h"
#include "vm/VM.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::workloads;

namespace {

TEST(Workloads, RegistryIsComplete) {
  EXPECT_EQ(intWorkloads().size(), 7u); // Table 2's SPECint95 set.
  EXPECT_EQ(fpWorkloads().size(), 3u);
  EXPECT_EQ(allWorkloadNames().size(), 10u);
  for (const std::string &Name : allWorkloadNames()) {
    Workload W = workloadByName(Name);
    EXPECT_EQ(W.Name, Name);
    EXPECT_NE(W.M, nullptr);
  }
}

TEST(Workloads, AllVerifyAndRun) {
  for (const std::string &Name : allWorkloadNames()) {
    Workload W = workloadByName(Name);
    EXPECT_TRUE(sir::verify(*W.M).empty()) << Name;
    auto Train = vm::runModule(*W.M, W.TrainArgs);
    ASSERT_TRUE(Train.Ok) << Name << ": " << Train.Error;
    auto Ref = vm::runModule(*W.M, W.RefArgs);
    ASSERT_TRUE(Ref.Ok) << Name << ": " << Ref.Error;
    // The ref input does strictly more work than the training input.
    EXPECT_GT(Ref.Steps, Train.Steps) << Name;
    EXPECT_FALSE(Ref.Output.empty()) << Name << " must self-check";
  }
}

TEST(Workloads, RunsAreDeterministic) {
  for (const std::string &Name : allWorkloadNames()) {
    Workload A = workloadByName(Name);
    Workload B = workloadByName(Name);
    auto RA = vm::runModule(*A.M, A.RefArgs);
    auto RB = vm::runModule(*B.M, B.RefArgs);
    ASSERT_TRUE(RA.Ok && RB.Ok) << Name;
    EXPECT_EQ(RA.Output, RB.Output) << Name;
    EXPECT_EQ(RA.Steps, RB.Steps) << Name;
  }
}

TEST(Workloads, SizesAreSubstantial) {
  // The harness needs workloads big enough for stable measurements but
  // small enough for quick iteration.
  for (const std::string &Name : allWorkloadNames()) {
    Workload W = workloadByName(Name);
    auto R = vm::runModule(*W.M, W.RefArgs);
    ASSERT_TRUE(R.Ok) << Name;
    EXPECT_GT(R.Steps, 30000u) << Name;
    EXPECT_LT(R.Steps, 5000000u) << Name;
  }
}

/// One workload under one scheme must survive the whole pipeline with
/// identical outputs. This is the reproduction's core integration test.
class WorkloadPipeline
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(WorkloadPipeline, EndToEndEquivalence) {
  const std::string Name = std::get<0>(GetParam());
  const partition::Scheme Scheme =
      static_cast<partition::Scheme>(std::get<1>(GetParam()));
  Workload W = workloadByName(Name);

  core::PipelineConfig Cfg;
  Cfg.Scheme = Scheme;
  Cfg.TrainArgs = W.TrainArgs;
  Cfg.RefArgs = W.RefArgs;
  core::PipelineRun Run = core::compileAndMeasure(*W.M, Cfg);
  ASSERT_TRUE(Run.ok()) << Name << "/" << partition::schemeName(Scheme)
                        << ": "
                        << (Run.Errors.empty() ? "output mismatch"
                                               : Run.Errors[0]);
  EXPECT_TRUE(Run.OutputsMatchOriginal);
  EXPECT_TRUE(sir::verify(*Run.Compiled).empty());

  if (Scheme == partition::Scheme::None) {
    EXPECT_EQ(Run.Stats.Fpa, 0u);
  }
  // Overheads stay bounded (paper: max ~4-5% dynamic increase).
  EXPECT_LT(Run.Stats.copyFraction() + Run.Stats.dupFraction(), 0.08)
      << Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadPipeline,
    ::testing::Combine(::testing::ValuesIn(allWorkloadNames()),
                       ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>> &Info) {
      return std::get<0>(Info.param) + "_" +
             partition::schemeName(static_cast<partition::Scheme>(
                 std::get<1>(Info.param)));
    });

//===----------------------------------------------------------------------===//
// Paper-shape assertions over the whole suite (Figure 8 invariants).
//===----------------------------------------------------------------------===//

TEST(PaperShape, AdvancedOffloadsSubstantially) {
  double MinAdv = 1.0, MaxAdv = 0.0;
  for (const Workload &W : intWorkloads()) {
    core::PipelineConfig Cfg;
    Cfg.Scheme = partition::Scheme::Advanced;
    Cfg.TrainArgs = W.TrainArgs;
    Cfg.RefArgs = W.RefArgs;
    core::PipelineRun Run = core::compileAndMeasure(*W.M, Cfg);
    ASSERT_TRUE(Run.ok()) << W.Name;
    double F = Run.Stats.fpaFraction();
    MinAdv = std::min(MinAdv, F);
    MaxAdv = std::max(MaxAdv, F);
  }
  // Paper: 9% - 41%. Allow the synthetic stand-ins some slack while
  // keeping the band meaningful.
  EXPECT_GT(MaxAdv, 0.25);
  EXPECT_LT(MaxAdv, 0.55);
  EXPECT_GT(MinAdv, 0.02);
}

TEST(PaperShape, BasicNeverInsertsAndAdvancedWinsOrTies) {
  for (const Workload &W : intWorkloads()) {
    core::PipelineConfig Basic;
    Basic.Scheme = partition::Scheme::Basic;
    Basic.TrainArgs = W.TrainArgs;
    Basic.RefArgs = W.RefArgs;
    core::PipelineRun BRun = core::compileAndMeasure(*W.M, Basic);
    ASSERT_TRUE(BRun.ok()) << W.Name;
    EXPECT_EQ(BRun.Rewrite.StaticCopies, 0u) << W.Name;
    EXPECT_EQ(BRun.Rewrite.StaticDups, 0u) << W.Name;

    core::PipelineConfig Adv = Basic;
    Adv.Scheme = partition::Scheme::Advanced;
    core::PipelineRun ARun = core::compileAndMeasure(*W.M, Adv);
    ASSERT_TRUE(ARun.ok()) << W.Name;
    // Advanced offloads at least about as much as basic (li ties).
    EXPECT_GT(ARun.Stats.fpaFraction(), BRun.Stats.fpaFraction() * 0.9)
        << W.Name;
  }
}

TEST(PaperShape, FpProgramsKeepNativeFpMajority) {
  for (const Workload &W : fpWorkloads()) {
    core::PipelineConfig Cfg;
    Cfg.Scheme = partition::Scheme::Advanced;
    Cfg.TrainArgs = W.TrainArgs;
    Cfg.RefArgs = W.RefArgs;
    core::PipelineRun Run = core::compileAndMeasure(*W.M, Cfg);
    ASSERT_TRUE(Run.ok()) << W.Name;
    EXPECT_GT(static_cast<double>(Run.Stats.NativeFp) /
                  static_cast<double>(Run.Stats.Total),
              0.05)
        << W.Name << " must be a real FP program";
  }
}

} // namespace
