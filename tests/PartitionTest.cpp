//===- tests/PartitionTest.cpp - Basic & advanced partitioning ------------===//

#include "analysis/CFG.h"
#include "analysis/RDG.h"
#include "partition/AdvancedPartitioner.h"
#include "partition/BasicPartitioner.h"
#include "partition/Partitioner.h"
#include "sir/Parser.h"
#include "sir/Printer.h"
#include "sir/Verifier.h"
#include "support/Rng.h"
#include "vm/VM.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::partition;
using namespace fpint::sir;

namespace {

std::unique_ptr<Module> parseOrDie(const char *Src) {
  ParseResult PR = parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error << " at line " << PR.Line;
  return std::move(PR.M);
}

/// Profiles \p M with the VM (training run).
vm::Profile profileOf(const Module &M) {
  vm::VM::Options Opts;
  Opts.CollectProfile = true;
  vm::VM Machine(M, Opts);
  auto R = Machine.run();
  EXPECT_TRUE(R.Ok) << R.Error;
  return Machine.profile();
}

/// Partitions a clone of \p Src with \p S and checks:
///  - assignment validation and module verification are clean,
///  - the partitioned module produces the same output as the original.
/// Returns the partitioned module.
std::unique_ptr<Module> partitionAndCheck(const char *Src, Scheme S,
                                          ModuleRewrite *OutRewrite = nullptr) {
  auto Original = parseOrDie(Src);
  auto M = Original->clone();
  vm::Profile Prof = profileOf(*M);

  ModuleRewrite RW = partitionModule(*M, S, &Prof);
  EXPECT_TRUE(RW.Errors.empty()) << RW.Errors[0];
  auto Verify = verify(*M);
  EXPECT_TRUE(Verify.empty()) << Verify[0] << "\n" << toString(*M);

  auto OrigRun = vm::runModule(*Original);
  auto PartRun = vm::runModule(*M);
  EXPECT_TRUE(OrigRun.Ok) << OrigRun.Error;
  EXPECT_TRUE(PartRun.Ok) << PartRun.Error;
  EXPECT_EQ(OrigRun.Output, PartRun.Output)
      << "partitioned program diverged:\n"
      << toString(*M);

  if (OutRewrite)
    *OutRewrite = std::move(RW);
  return M;
}

unsigned countFpa(const Module &M) {
  unsigned Count = 0;
  for (const auto &F : M.functions())
    F->forEachInstr([&](const Instruction &I) { Count += I.inFpa(); });
  return Count;
}

//===----------------------------------------------------------------------===//
// Basic scheme
//===----------------------------------------------------------------------===//

TEST(BasicScheme, OffloadsVectorSumValues) {
  auto M = partitionAndCheck(fixtures::IntVectorSum, Scheme::Basic);
  const Function &F = *M->functionByName("main");

  // The c[i] = a[i] + b[i] add executes in FPa; its loads/stores use the
  // FP file (the paper's Figure 2 offloading).
  const Instruction *SumAdd = nullptr;
  unsigned FpLoads = 0, FpStores = 0;
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() == Opcode::Add && I.inFpa())
      SumAdd = &I;
    if (I.isLoad() && F.regClass(I.def()) == RegClass::Fp)
      ++FpLoads;
    if (I.isStore() && F.regClass(I.uses()[0]) == RegClass::Fp)
      ++FpStores;
  });
  ASSERT_NE(SumAdd, nullptr) << toString(F);
  EXPECT_EQ(FpLoads, 3u); // a[i], b[i], and the checking loop's c[j].
  EXPECT_EQ(FpStores, 1u);

  // Induction/addressing stays INT.
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() == Opcode::Sll) {
      EXPECT_FALSE(I.inFpa());
    }
  });
}

TEST(BasicScheme, MatchesPaperFigure4) {
  auto M = partitionAndCheck(fixtures::InvalidateForCall, Scheme::Basic);
  const Function &F = *M->functionByName("main");

  // Figure 4: the reg_tick increment component {I11v, I12, I13, I14v}
  // offloads; the branch slices through regno do not.
  const Instruction *Bltz = nullptr, *Bne17 = nullptr, *Beq5 = nullptr;
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() == Opcode::Bltz)
      Bltz = &I;
    if (I.op() == Opcode::Bne && I.parent()->name() == "skip")
      Bne17 = &I;
    if (I.op() == Opcode::Beq)
      Beq5 = &I;
  });
  ASSERT_NE(Bltz, nullptr);
  ASSERT_NE(Bne17, nullptr);
  ASSERT_NE(Beq5, nullptr);
  EXPECT_TRUE(Bltz->inFpa()) << toString(F);
  EXPECT_FALSE(Bne17->inFpa());
  EXPECT_FALSE(Beq5->inFpa());

  // FP-file data memory ops: the reg_tick load and store in the hot
  // loop (Figure 4's l.s/s.s pair) plus the dump loop's load, whose
  // value feeds only "out".
  unsigned FpDataMemOps = 0;
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() == Opcode::Lw && I.mem().Base.isValid() &&
        F.regClass(I.def()) == RegClass::Fp)
      ++FpDataMemOps;
    if (I.op() == Opcode::Sw && F.regClass(I.uses()[0]) == RegClass::Fp)
      ++FpDataMemOps;
  });
  EXPECT_EQ(FpDataMemOps, 3u) << toString(F);
}

TEST(BasicScheme, NeverInsertsInstructions) {
  auto Original = parseOrDie(fixtures::InvalidateForCall);
  unsigned Before = 0;
  for (const auto &F : Original->functions())
    Before += F->numInstrIds();

  ModuleRewrite RW;
  auto M = partitionAndCheck(fixtures::InvalidateForCall, Scheme::Basic, &RW);
  unsigned After = 0;
  for (const auto &F : M->functions())
    After += F->numInstrIds();
  EXPECT_EQ(Before, After);
  EXPECT_EQ(RW.StaticCopies, 0u);
  EXPECT_EQ(RW.StaticDups, 0u);
  EXPECT_EQ(RW.StaticCopyBacks, 0u);
}

TEST(BasicScheme, SatisfiesPartitioningConditions) {
  for (const char *Src : {fixtures::IntVectorSum, fixtures::InvalidateForCall,
                          fixtures::MemoryFreeRand}) {
    auto M = parseOrDie(Src);
    for (const auto &F : M->functions()) {
      F->renumber();
      analysis::CFG Cfg(*F);
      analysis::RDG G(*F, Cfg);
      Assignment A = partitionBasic(G);
      EXPECT_TRUE(satisfiesBasicConditions(A)) << F->name();
      EXPECT_TRUE(validateAssignment(A).empty()) << F->name();
    }
  }
}

TEST(BasicScheme, MemoryFreeCodeFullyOffloads) {
  // Section 6.6: compress's memory-free rand function moves entirely to
  // FPa (here already under the basic scheme: nothing touches memory).
  auto M = partitionAndCheck(fixtures::MemoryFreeRand, Scheme::Basic);
  const Function &F = *M->functionByName("main");
  unsigned Fpa = 0, Offloadable = 0;
  F.forEachInstr([&](const Instruction &I) {
    if (fpaSupports(I.op()) || I.op() == Opcode::Out) {
      ++Offloadable;
      Fpa += I.inFpa();
    }
  });
  EXPECT_EQ(Fpa, Offloadable) << toString(F);
  EXPECT_GT(Fpa, 8u);
}

//===----------------------------------------------------------------------===//
// Advanced scheme
//===----------------------------------------------------------------------===//

TEST(AdvancedScheme, OffloadsBranchSlicesWithDuplication) {
  // Figures 5/6: with copies/duplication the regno branch slices
  // ({2v,3,4,5} and {16,17}) move to FPa too.
  ModuleRewrite RW;
  auto M = partitionAndCheck(fixtures::InvalidateForCall, Scheme::Advanced,
                             &RW);
  const Function &F = *M->functionByName("main");

  const Instruction *Bne17 = nullptr, *Beq5 = nullptr, *Srav = nullptr;
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() == Opcode::Bne && I.parent()->name() == "skip")
      Bne17 = &I;
    if (I.op() == Opcode::Beq)
      Beq5 = &I;
    if (I.op() == Opcode::SraV)
      Srav = &I;
  });
  ASSERT_NE(Bne17, nullptr);
  ASSERT_NE(Beq5, nullptr);
  ASSERT_NE(Srav, nullptr);
  EXPECT_TRUE(Bne17->inFpa()) << toString(F);
  EXPECT_TRUE(Beq5->inFpa()) << toString(F);
  EXPECT_TRUE(Srav->inFpa()) << toString(F);

  // Communication for the regno chain was inserted (copies or dups).
  EXPECT_GT(RW.StaticCopies + RW.StaticDups, 0u);
}

TEST(AdvancedScheme, StrictlyLargerThanBasicOnPaperExample) {
  auto BasicM = partitionAndCheck(fixtures::InvalidateForCall, Scheme::Basic);
  auto AdvM =
      partitionAndCheck(fixtures::InvalidateForCall, Scheme::Advanced);
  EXPECT_GT(countFpa(*AdvM), countFpa(*BasicM));
}

TEST(AdvancedScheme, DynStatsShowLargerFpaPartition) {
  for (const char *Src :
       {fixtures::IntVectorSum, fixtures::InvalidateForCall}) {
    auto BasicM = partitionAndCheck(Src, Scheme::Basic);
    ModuleRewrite AdvRW;
    auto AdvM = partitionAndCheck(Src, Scheme::Advanced, &AdvRW);

    vm::Profile BasicProf = profileOf(*BasicM);
    vm::Profile AdvProf = profileOf(*AdvM);
    DynStats BasicStats = computeDynStats(*BasicM, BasicProf, nullptr);
    DynStats AdvStats = computeDynStats(*AdvM, AdvProf, &AdvRW);

    EXPECT_GE(AdvStats.fpaFraction(), BasicStats.fpaFraction());
    // The paper reports small overheads (max 4% dynamic increase).
    EXPECT_LT(AdvStats.copyFraction() + AdvStats.dupFraction(), 0.10)
        << Src;
  }
}

TEST(AdvancedScheme, CallArgumentProducersGetCopyBacks) {
  // A hot computation that both feeds a call argument and is otherwise
  // offloadable: the advanced scheme keeps it in FPa and pays one
  // cp_to_int per call (Section 6.4), or keeps it INT if unprofitable --
  // either way the output must match and validation must pass.
  const char *Src = R"(
global acc 1

func sink(%v) {
entry:
  lw %a, acc
  add %a2, %a, %v
  sw %a2, acc
  ret
}

func main() {
entry:
  li %i, 0
loop:
  sll %x, %i, 3
  xor %y, %x, %i
  addi %arg, %y, 7
  call sink(%arg)
  addi %i, %i, 1
  slti %t, %i, 40
  bne %t, %zero, loop
  lw %r, acc
  out %r
  ret
}
)";
  partitionAndCheck(Src, Scheme::Advanced);
}

TEST(AdvancedScheme, FormalParameterCopies) {
  // A leaf function whose formal feeds pure branch computation: the
  // advanced scheme may copy the formal into the FP file at entry.
  const char *Src = R"(
func classify(%v) {
entry:
  andi %b, %v, 7
  slti %t, %b, 4
  beq %t, %zero, big
  ret %v
big:
  li %m1, -1
  ret %m1
}

func main() {
entry:
  li %i, 0
  li %acc, 0
loop:
  call %c, classify(%i)
  add %acc, %acc, %c
  addi %i, %i, 1
  slti %t, %i, 30
  bne %t, %zero, loop
  out %acc
  ret
}
)";
  partitionAndCheck(Src, Scheme::Advanced);
}

TEST(AdvancedScheme, RespectsUnsupportedOpcodes) {
  // Multiplies pin their backward slices to INT.
  const char *Src = R"(
func main() {
entry:
  li %i, 1
  li %acc, 0
loop:
  mul %sq, %i, %i
  add %acc, %acc, %sq
  addi %i, %i, 1
  slti %t, %i, 20
  bne %t, %zero, loop
  out %acc
  ret
}
)";
  auto M = partitionAndCheck(Src, Scheme::Advanced);
  const Function &F = *M->functionByName("main");
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() == Opcode::Mul) {
      EXPECT_FALSE(I.inFpa());
    }
  });
}

TEST(AdvancedScheme, CostParametersGateDuplication) {
  // With a tiny copy overhead, copies dominate; with the default
  // parameters the loop-carried counter duplicates (paper Figure 6).
  auto M = parseOrDie(fixtures::InvalidateForCall);
  vm::Profile Prof = profileOf(*M);

  auto CloneA = M->clone();
  vm::Profile ProfA = profileOf(*CloneA);
  CostParams Cheap;
  Cheap.CopyOverhead = 1.0;
  Cheap.DupOverhead = 0.5;
  ModuleRewrite RWA = partitionModule(*CloneA, Scheme::Advanced, &ProfA, Cheap);
  EXPECT_TRUE(RWA.Errors.empty());

  auto CloneB = M->clone();
  vm::Profile ProfB = profileOf(*CloneB);
  ModuleRewrite RWB = partitionModule(*CloneB, Scheme::Advanced, &ProfB);
  EXPECT_TRUE(RWB.Errors.empty());

  // Both settings partition successfully and produce correct code.
  auto RunA = vm::runModule(*CloneA);
  auto RunB = vm::runModule(*CloneB);
  auto RunO = vm::runModule(*M);
  ASSERT_TRUE(RunA.Ok && RunB.Ok && RunO.Ok);
  EXPECT_EQ(RunA.Output, RunO.Output);
  EXPECT_EQ(RunB.Output, RunO.Output);
  // Default parameters duplicate the induction chain.
  EXPECT_GT(RWB.StaticDups, 0u) << "expected Figure 6 style duplication";
}

TEST(AdvancedScheme, UnprofitableComponentsStayInt) {
  // A once-executed branch slice behind a copy is not worth the copy:
  // Phase 2 must evict it (profit < 0 with o_copy > 1).
  const char *Src = R"(
global buf 4

func main() {
entry:
  la %p, buf
  lw %v, 0(%p)
  addi %w, %v, 3
  sw %w, 4(%p)
  slti %t, %w, 100
  bne %t, %zero, done
  out %w
done:
  ret
}
)";
  ModuleRewrite RW;
  auto M = partitionAndCheck(Src, Scheme::Advanced, &RW);
  // Everything runs once; copies cost more than they save, so no copies
  // remain and the branch slice stays INT.
  EXPECT_EQ(RW.StaticCopies + RW.StaticDups, 0u) << toString(*M);
}

//===----------------------------------------------------------------------===//
// Randomized property tests: partitioning must never change semantics.
//===----------------------------------------------------------------------===//

/// Generates a random but well-formed integer program with loops,
/// branches, memory traffic, and calls.
std::string randomProgram(uint64_t Seed) {
  Rng R(Seed);
  std::string Src = "global data 64 = ";
  for (int I = 0; I < 32; ++I)
    Src += std::to_string(R.nextInRange(-50, 50)) + " ";
  Src += "\n";

  // A small helper function.
  Src += R"(
func helper(%a, %b) {
entry:
  add %s, %a, %b
  andi %m, %s, 255
  ret %m
}
)";

  Src += "func main() {\nentry:\n";
  unsigned NumVals = 4;
  auto Val = [&](unsigned I) { return "%v" + std::to_string(I); };
  for (unsigned I = 0; I < NumVals; ++I)
    Src += "  li " + Val(I) + ", " + std::to_string(R.nextInRange(1, 9)) +
           "\n";
  Src += "  li %i, 0\n  la %base, data\nloop:\n";

  unsigned Steps = 6 + R.nextBelow(10);
  for (unsigned S = 0; S < Steps; ++S) {
    unsigned A = R.nextBelow(NumVals), B = R.nextBelow(NumVals),
             D = R.nextBelow(NumVals);
    switch (R.nextBelow(8)) {
    case 0:
      Src += "  add " + Val(D) + ", " + Val(A) + ", " + Val(B) + "\n";
      break;
    case 1:
      Src += "  xor " + Val(D) + ", " + Val(A) + ", " + Val(B) + "\n";
      break;
    case 2:
      Src += "  sll " + Val(D) + ", " + Val(A) + ", " +
             std::to_string(R.nextBelow(4)) + "\n";
      break;
    case 3: {
      // Bounded indexed load.
      Src += "  andi %off" + std::to_string(S) + ", " + Val(A) + ", 63\n";
      Src += "  sll %sc" + std::to_string(S) + ", %off" + std::to_string(S) +
             ", 2\n";
      Src += "  add %ea" + std::to_string(S) + ", %base, %sc" +
             std::to_string(S) + "\n";
      Src += "  lw " + Val(D) + ", 0(%ea" + std::to_string(S) + ")\n";
      break;
    }
    case 4: {
      Src += "  andi %soff" + std::to_string(S) + ", " + Val(A) + ", 63\n";
      Src += "  sll %ssc" + std::to_string(S) + ", %soff" + std::to_string(S) +
             ", 2\n";
      Src += "  add %sea" + std::to_string(S) + ", %base, %ssc" +
             std::to_string(S) + "\n";
      Src += "  sw " + Val(B) + ", 0(%sea" + std::to_string(S) + ")\n";
      break;
    }
    case 5:
      Src += "  call %r" + std::to_string(S) + ", helper(" + Val(A) + ", " +
             Val(B) + ")\n";
      Src += "  move " + Val(D) + ", %r" + std::to_string(S) + "\n";
      break;
    case 6:
      Src += "  slti %c" + std::to_string(S) + ", " + Val(A) + ", " +
             std::to_string(R.nextInRange(-20, 120)) + "\n";
      Src += "  beq %c" + std::to_string(S) + ", %zero, skip" +
             std::to_string(S) + "\n";
      Src += "  addi " + Val(D) + ", " + Val(D) + ", 1\n";
      Src += "skip" + std::to_string(S) + ":\n";
      break;
    case 7:
      Src += "  mul " + Val(D) + ", " + Val(A) + ", " + Val(B) + "\n";
      Src += "  andi " + Val(D) + ", " + Val(D) + ", 1023\n";
      break;
    }
  }
  Src += "  addi %i, %i, 1\n  slti %t, %i, 25\n  bne %t, %zero, loop\n";
  for (unsigned I = 0; I < NumVals; ++I)
    Src += "  out " + Val(I) + "\n";
  Src += "  lw %final, data+16\n  out %final\n  ret\n}\n";
  return Src;
}

class PartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PartitionProperty, RandomProgramsStayEquivalent) {
  std::string Src = randomProgram(static_cast<uint64_t>(GetParam()) * 7919);
  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error << "\n" << Src;
  auto &Original = *PR.M;
  auto OrigRun = vm::runModule(Original);
  ASSERT_TRUE(OrigRun.Ok) << OrigRun.Error << "\n" << Src;

  for (Scheme S : {Scheme::Basic, Scheme::Advanced}) {
    auto Clone = Original.clone();
    vm::Profile Prof = profileOf(*Clone);
    ModuleRewrite RW = partitionModule(*Clone, S, &Prof);
    ASSERT_TRUE(RW.Errors.empty())
        << schemeName(S) << ": " << RW.Errors[0] << "\n"
        << Src;
    auto Verify = verify(*Clone);
    ASSERT_TRUE(Verify.empty())
        << schemeName(S) << ": " << Verify[0] << "\n"
        << toString(*Clone);
    auto Run = vm::runModule(*Clone);
    ASSERT_TRUE(Run.Ok) << Run.Error;
    ASSERT_EQ(Run.Output, OrigRun.Output)
        << schemeName(S) << " diverged for seed " << GetParam() << "\n"
        << Src << "\n"
        << toString(*Clone);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty, ::testing::Range(0, 40));

} // namespace
