//===- tests/VMTest.cpp - Functional interpreter tests --------------------===//

#include "sir/IRBuilder.h"
#include "sir/Parser.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace fpint;
using namespace fpint::sir;
using namespace fpint::vm;

namespace {

std::unique_ptr<Module> parseOrDie(const char *Src) {
  ParseResult PR = parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error << " at line " << PR.Line;
  return std::move(PR.M);
}

TEST(VM, ArithmeticBasics) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 7
  li %b, 5
  add %s, %a, %b
  sub %d, %a, %b
  mul %p, %a, %b
  div %q, %a, %b
  rem %r, %a, %b
  out %s
  out %d
  out %p
  out %q
  out %r
  ret
}
)");
  auto R = runModule(*M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int32_t>{12, 2, 35, 1, 2}));
}

TEST(VM, WrappingAndShifts) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %max, 2147483647
  addi %w, %max, 1
  out %w
  li %a, -8
  sra %x, %a, 1
  srl %y, %a, 28
  sll %z, %a, 1
  out %x
  out %y
  out %z
  li %b, 3
  sllv %v, %a, %b
  out %v
  ret
}
)");
  auto R = runModule(*M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output,
            (std::vector<int32_t>{INT32_MIN, -4, 15, -16, -64}));
}

TEST(VM, DivisionByZeroIsTotal) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 42
  li %z, 0
  div %q, %a, %z
  rem %r, %a, %z
  out %q
  out %r
  li %min, -2147483648
  li %m1, -1
  div %q2, %min, %m1
  out %q2
  ret
}
)");
  auto R = runModule(*M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int32_t>{0, 42, 0}));
}

TEST(VM, ComparisonsAndBranches) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, -3
  li %b, 2
  slt %s, %a, %b
  sltu %u, %a, %b
  out %s
  out %u
  bltz %a, neg
  out %b
  ret
neg:
  li %one, 1
  out %one
  ret
}
)");
  auto R = runModule(*M);
  ASSERT_TRUE(R.Ok) << R.Error;
  // -3 < 2 signed; 0xFFFFFFFD > 2 unsigned.
  EXPECT_EQ(R.Output, (std::vector<int32_t>{1, 0, 1}));
}

TEST(VM, GlobalsAndByteMemory) {
  auto M = parseOrDie(R"(
global words 4 = 100 200 300
global bytes 2

func main() {
entry:
  lw %a, words+4
  out %a
  li %v, 300
  sw %v, words+12
  lw %b, words+12
  out %b
  li %c, 513
  sb %c, bytes
  lbu %d, bytes
  out %d
  li %n, -1
  sb %n, bytes+1
  lb %e, bytes+1
  lbu %f, bytes+1
  out %e
  out %f
  ret
}
)");
  auto R = runModule(*M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int32_t>{200, 300, 1, -1, 255}));
}

TEST(VM, RegisterIndirectAddressing) {
  auto M = parseOrDie(R"(
global tab 8 = 5 10 15 20 25 30 35 40

func main() {
entry:
  la %base, tab
  li %i, 0
  li %sum, 0
loop:
  sll %off, %i, 2
  add %p, %base, %off
  lw %v, 0(%p)
  add %sum, %sum, %v
  addi %i, %i, 1
  slti %t, %i, 8
  bne %t, %zero, loop
  out %sum
  ret
}
)");
  auto R = runModule(*M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int32_t>{180}));
}

TEST(VM, CallsArgumentsAndReturnValues) {
  auto M = parseOrDie(R"(
func fib(%n) {
entry:
  slti %t, %n, 2
  beq %t, %zero, rec
  ret %n
rec:
  addi %n1, %n, -1
  call %a, fib(%n1)
  addi %n2, %n, -2
  call %b, fib(%n2)
  add %s, %a, %b
  ret %s
}

func main() {
entry:
  li %n, 10
  call %r, fib(%n)
  out %r
  ret
}
)");
  auto R = runModule(*M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int32_t>{55}));
}

TEST(VM, MainArguments) {
  auto M = parseOrDie(R"(
func main(%x, %y) {
entry:
  add %s, %x, %y
  out %s
  ret %s
}
)");
  VM Machine(*M);
  auto R = Machine.run({30, 12});
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int32_t>{42}));
  EXPECT_EQ(R.ExitValue, 42);
}

TEST(VM, FramesIsolatePerInvocation) {
  auto M = parseOrDie(R"(
func helper(%depth) {
entry:
  sw %depth, [frame+0]
  blez %depth, base
  addi %d1, %depth, -1
  call %ignored, helper(%d1)
base:
  lw %back, [frame+0]
  ret %back
}

func main() {
entry:
  li %n, 5
  call %r, helper(%n)
  out %r
  ret
}
)");
  // Each invocation's frame slot must be private: after the recursive
  // call, the outer frame still holds its own depth.
  auto R = runModule(*M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int32_t>{5}));
}

TEST(VM, FloatingPointPipeline) {
  auto M = parseOrDie(R"(
global fv 2

func main() {
entry:
  fli %a, 1.5
  fli %b, 2.25
  fadd %c, %a, %b
  s.s %c, fv
  l.s %d, fv
  fmul %e, %d, %d
  fcmplt %t, %a, %e
  fbeqz %t, skip
  li %yes, 1
  out %yes
skip:
  cp_to_int %bits, %e
  out %bits
  ret
}
)");
  auto R = runModule(*M);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Output.size(), 2u);
  EXPECT_EQ(R.Output[0], 1);
  float E;
  static_assert(sizeof(float) == 4);
  std::memcpy(&E, &R.Output[1], 4);
  EXPECT_FLOAT_EQ(E, 3.75f * 3.75f);
}

TEST(VM, IntToFloatConversions) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %i, 7
  cp_to_fp %fbits, %i
  cvtif %f, %fbits
  fadd %g, %f, %f
  cvtfi %gi, %g
  cp_to_int %out, %gi
  out %out
  ret
}
)");
  auto R = runModule(*M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int32_t>{14}));
}

TEST(VM, FpaAssignedCodeComputesIntegerResults) {
  // FPa-offloaded integer arithmetic operates on integer bit patterns
  // held in FP registers; results must match plain integer execution.
  auto M = parseOrDie(R"(
func main() {
entry:
  li,a %x, 1000
  addi,a %y, %x, -58
  sll,a %z, %y, 2
  andi,a %w, %z, 4095
  out,a %w
  ret
}
)");
  auto R = runModule(*M);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int32_t>{(((1000 - 58) << 2) & 4095)}));
}

TEST(VM, ProfileCountsBlocks) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %i, 0
  li %n, 17
loop:
  addi %i, %i, 1
  slt %t, %i, %n
  bne %t, %zero, loop
  out %i
  ret
}
)");
  VM::Options Opts;
  Opts.CollectProfile = true;
  VM Machine(*M, Opts);
  auto R = Machine.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  const Function *F = M->functionByName("main");
  const BasicBlock *Entry = F->blocks()[0].get();
  const BasicBlock *Loop = F->blocks()[1].get();
  EXPECT_EQ(Machine.profile().countOf(Entry), 1u);
  EXPECT_EQ(Machine.profile().countOf(Loop), 17u);
  EXPECT_EQ(Machine.profile().DynInstrs, R.Steps);
}

TEST(VM, TraceRecordsBranchOutcomesAndAddresses) {
  auto M = parseOrDie(R"(
global g 1 = 11

func main() {
entry:
  li %i, 0
loop:
  addi %i, %i, 1
  slti %t, %i, 3
  bne %t, %zero, loop
  lw %v, g
  out %v
  ret
}
)");
  VM::Options Opts;
  Opts.CollectTrace = true;
  VM Machine(*M, Opts);
  auto R = Machine.run();
  ASSERT_TRUE(R.Ok) << R.Error;

  unsigned Branches = 0, Taken = 0, Loads = 0;
  for (const TraceEntry &TE : Machine.trace()) {
    if (TE.I->isCondBranch()) {
      ++Branches;
      Taken += TE.Taken;
    }
    if (TE.I->isLoad()) {
      ++Loads;
      EXPECT_EQ(TE.MemAddr, Machine.globalAddress("g"));
    }
  }
  EXPECT_EQ(Branches, 3u); // Loop runs three iterations.
  EXPECT_EQ(Taken, 2u);
  EXPECT_EQ(Loads, 1u);
  // PCs are 4-byte spaced and monotone within a straight-line block.
  ASSERT_GE(Machine.trace().size(), 2u);
  EXPECT_EQ(Machine.trace()[1].Pc, Machine.trace()[0].Pc + 4);
}

TEST(VM, InfiniteLoopHitsBudget) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 1
spin:
  add %a, %a, %a
  jmp spin
}
)");
  VM::Options Opts;
  Opts.MaxSteps = 1000;
  VM Machine(*M, Opts);
  auto R = Machine.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(VM, OutOfBoundsAccessFails) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %p, -4
  lw %v, 0(%p)
  out %v
  ret
}
)");
  auto R = runModule(*M);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos);
}

TEST(VM, DeepRecursionGuard) {
  auto M = parseOrDie(R"(
func f(%n) {
entry:
  addi %m, %n, 1
  call %r, f(%m)
  ret %r
}

func main() {
entry:
  li %z, 0
  call %r, f(%z)
  ret
}
)");
  VM::Options Opts;
  Opts.MaxCallDepth = 100;
  VM Machine(*M, Opts);
  auto R = Machine.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("depth"), std::string::npos);
}

} // namespace
