//===- tests/DominatorLoopTest.cpp - DominatorTree and LoopInfo -----------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-built CFG fixtures for the mid-end's structural analyses:
/// immediate dominators, dominance frontiers, and DFS-interval
/// dominance queries on diamonds and unreachable blocks; natural-loop
/// discovery (nesting, preheaders, latches, exits) on nested and
/// multi-latch loops, including the irreducible-looking shape that must
/// produce no natural loop at all; and the AnalysisManager contract
/// that dropping "cfg" transitively drops "domtree" and "loops".
///
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisManager.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "sir/Parser.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::analysis;
using namespace fpint::sir;

namespace {

std::unique_ptr<Module> parseOrDie(const char *Src) {
  ParseResult PR = parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error << " at line " << PR.Line;
  return std::move(PR.M);
}

using U = std::vector<unsigned>;

//===----------------------------------------------------------------------===//
// DominatorTree
//===----------------------------------------------------------------------===//

TEST(DominatorTree, DiamondWithUnreachable) {
  auto M = parseOrDie(R"(
func main(%x) {
entry:
  blez %x, left
right:
  jmp join
left:
  jmp join
dead:
  jmp join
join:
  ret
}
)");
  const Function &F = *M->functionByName("main");
  // entry=0, right=1, left=2, dead=3, join=4.
  AnalysisManager AM;
  const DominatorTree &DT = AM.getResult<DominatorTreeAnalysis>(F);

  EXPECT_EQ(DT.idom(0), 0u);
  EXPECT_EQ(DT.idom(1), 0u);
  EXPECT_EQ(DT.idom(2), 0u);
  EXPECT_EQ(DT.idom(4), 0u); // Join: neither arm dominates it.
  EXPECT_EQ(DT.children(0), (U{1, 2, 4}));
  EXPECT_TRUE(DT.children(1).empty());
  EXPECT_TRUE(DT.children(4).empty());

  EXPECT_TRUE(DT.dominates(0, 4));
  EXPECT_TRUE(DT.properlyDominates(0, 1));
  EXPECT_FALSE(DT.dominates(1, 4));
  EXPECT_FALSE(DT.dominates(2, 4));
  EXPECT_FALSE(DT.properlyDominates(4, 4));

  // Frontiers: each arm's dominance stops at the join; entry and join
  // dominate everything below them.
  EXPECT_EQ(DT.frontier(1), (U{4}));
  EXPECT_EQ(DT.frontier(2), (U{4}));
  EXPECT_TRUE(DT.frontier(0).empty());
  EXPECT_TRUE(DT.frontier(4).empty());

  // The unreachable block is outside the tree: self-idom, no children,
  // empty frontier, dominated by (and dominating) only itself.
  EXPECT_FALSE(DT.isReachable(3));
  EXPECT_EQ(DT.idom(3), 3u);
  EXPECT_TRUE(DT.children(3).empty());
  EXPECT_TRUE(DT.frontier(3).empty());
  EXPECT_TRUE(DT.dominates(3, 3));
  EXPECT_FALSE(DT.dominates(3, 4));
  EXPECT_FALSE(DT.dominates(0, 3));

  // Pre-order covers exactly the reachable blocks, entry first.
  EXPECT_EQ(DT.preorder().size(), 4u);
  EXPECT_EQ(DT.preorder()[0], 0u);
}

TEST(DominatorTree, LoopFrontierContainsHeader) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %i, 0
loop:
  addi %i, %i, 1
  slti %c, %i, 4
  bne %c, %zero, loop
exit:
  ret
}
)");
  const Function &F = *M->functionByName("main");
  // entry=0, loop=1, exit=2.
  AnalysisManager AM;
  const DominatorTree &DT = AM.getResult<DominatorTreeAnalysis>(F);
  EXPECT_EQ(DT.idom(1), 0u);
  EXPECT_EQ(DT.idom(2), 1u);
  // The latch's dominance frontier contains its own header (the
  // back edge re-enters a block the latch does not strictly dominate).
  EXPECT_EQ(DT.frontier(1), (U{1}));
}

//===----------------------------------------------------------------------===//
// LoopInfo
//===----------------------------------------------------------------------===//

TEST(LoopInfo, NestedLoops) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %i, 0
outer:
  li %j, 0
inner:
  addi %j, %j, 1
  slti %tj, %j, 10
  bne %tj, %zero, inner
  addi %i, %i, 1
  slti %ti, %i, 10
  bne %ti, %zero, outer
  ret
}
)");
  const Function &F = *M->functionByName("main");
  // entry=0, outer=1, inner=2, after-inner=3 (outer latch), after=4.
  AnalysisManager AM;
  const LoopInfo &LI = AM.getResult<LoopInfoAnalysis>(F);
  ASSERT_EQ(LI.loops().size(), 2u);

  // Outermost first: loops()[0] is the outer loop.
  const Loop &Outer = LI.loops()[0];
  const Loop &Inner = LI.loops()[1];
  EXPECT_EQ(Outer.Header, 1u);
  EXPECT_EQ(Outer.Blocks, (U{1, 2, 3}));
  EXPECT_EQ(Outer.Latches, (U{3}));
  EXPECT_EQ(Outer.Parent, Loop::NoLoop);
  EXPECT_EQ(Outer.Depth, 1u);
  EXPECT_EQ(Outer.Preheader, 0u);
  EXPECT_EQ(Outer.Exiting, (U{3}));
  EXPECT_EQ(Outer.Exits, (U{4}));

  EXPECT_EQ(Inner.Header, 2u);
  EXPECT_EQ(Inner.Blocks, (U{2}));
  EXPECT_EQ(Inner.Latches, (U{2}));
  EXPECT_EQ(Inner.Parent, 0);
  EXPECT_EQ(Inner.Depth, 2u);
  EXPECT_EQ(Inner.Preheader, 1u); // The outer header feeds it directly.
  EXPECT_EQ(Inner.Exiting, (U{2}));
  EXPECT_EQ(Inner.Exits, (U{3}));

  EXPECT_TRUE(Outer.contains(2));
  EXPECT_FALSE(Inner.contains(3));
  EXPECT_EQ(LI.innermostLoop(2), 1);
  EXPECT_EQ(LI.innermostLoop(3), 0);
  EXPECT_EQ(LI.innermostLoop(0), Loop::NoLoop);
  EXPECT_EQ(LI.depth(2), 2u);
  EXPECT_EQ(LI.depth(3), 1u);
  EXPECT_EQ(LI.depth(4), 0u);
}

TEST(LoopInfo, MultiLatchMergesIntoOneLoop) {
  auto M = parseOrDie(R"(
func main(%x) {
entry:
  li %i, 0
head:
  addi %i, %i, 1
  blez %x, latch2
mid:
  slti %t, %i, 5
  bne %t, %zero, head
  jmp exit
latch2:
  slti %t2, %i, 7
  bne %t2, %zero, head
exit:
  ret
}
)");
  const Function &F = *M->functionByName("main");
  // entry=0, head=1, mid=2, anon-jmp=3, latch2=4, exit=5.
  AnalysisManager AM;
  const LoopInfo &LI = AM.getResult<LoopInfoAnalysis>(F);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  EXPECT_EQ(L.Header, 1u);
  EXPECT_EQ(L.Latches, (U{2, 4}));
  EXPECT_EQ(L.Blocks, (U{1, 2, 4}));
  EXPECT_EQ(L.Preheader, 0u);
  EXPECT_EQ(L.Exiting, (U{2, 4}));
  EXPECT_EQ(L.Exits, (U{3, 5}));
}

TEST(LoopInfo, IrreducibleShapeHasNoNaturalLoop) {
  // The cycle a <-> b is entered at both a and b, so neither endpoint
  // of the b->a edge is dominated by the other: no back edge, no loop.
  auto M = parseOrDie(R"(
func main(%x) {
entry:
  blez %x, b
a:
  jmp b
b:
  blez %x, a
c:
  ret
}
)");
  const Function &F = *M->functionByName("main");
  AnalysisManager AM;
  const LoopInfo &LI = AM.getResult<LoopInfoAnalysis>(F);
  EXPECT_TRUE(LI.loops().empty());
  EXPECT_EQ(LI.innermostLoop(1), Loop::NoLoop);
  EXPECT_EQ(LI.innermostLoop(2), Loop::NoLoop);
}

TEST(LoopInfo, NoPreheaderWhenEntryEdgeIsShared) {
  // Two outside predecessors reach the header: no preheader.
  auto M = parseOrDie(R"(
func main(%x) {
entry:
  blez %x, head
other:
  jmp head
head:
  addi %i, %i, 1
  slti %t, %i, 3
  bne %t, %zero, head
exit:
  ret
}
)");
  const Function &F = *M->functionByName("main");
  AnalysisManager AM;
  const LoopInfo &LI = AM.getResult<LoopInfoAnalysis>(F);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_EQ(LI.loops()[0].Preheader, Loop::NoBlock);
}

TEST(LoopInfo, NoPreheaderWhenOutsidePredBranches) {
  // The unique outside predecessor has a second successor, so hoisting
  // into it would execute on the bypass path: no preheader.
  auto M = parseOrDie(R"(
func main(%x) {
entry:
  blez %x, exit
head:
  addi %i, %i, 1
  slti %t, %i, 3
  bne %t, %zero, head
exit:
  ret
}
)");
  const Function &F = *M->functionByName("main");
  AnalysisManager AM;
  const LoopInfo &LI = AM.getResult<LoopInfoAnalysis>(F);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_EQ(LI.loops()[0].Header, 1u);
  EXPECT_EQ(LI.loops()[0].Preheader, Loop::NoBlock);
}

//===----------------------------------------------------------------------===//
// AnalysisManager integration
//===----------------------------------------------------------------------===//

TEST(DominatorLoopAnalyses, DroppingCfgInvalidatesTransitively) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %i, 0
loop:
  addi %i, %i, 1
  slti %c, %i, 4
  bne %c, %zero, loop
exit:
  ret
}
)");
  const Function &F = *M->functionByName("main");
  AnalysisManager AM;

  // Computing "loops" computes (and records dependencies on) "domtree"
  // and "cfg".
  AM.getResult<LoopInfoAnalysis>(F);
  auto MissesOf = [&](const char *Name) {
    auto It = AM.countersByAnalysis().find(Name);
    return It == AM.countersByAnalysis().end() ? uint64_t(0)
                                               : It->second.Misses;
  };
  auto InvalidationsOf = [&](const char *Name) {
    auto It = AM.countersByAnalysis().find(Name);
    return It == AM.countersByAnalysis().end() ? uint64_t(0)
                                               : It->second.Invalidations;
  };
  EXPECT_EQ(MissesOf("cfg"), 1u);
  EXPECT_EQ(MissesOf("domtree"), 1u);
  EXPECT_EQ(MissesOf("loops"), 1u);

  // Cached: no further misses.
  AM.getResult<LoopInfoAnalysis>(F);
  AM.getResult<DominatorTreeAnalysis>(F);
  EXPECT_EQ(MissesOf("loops"), 1u);
  EXPECT_EQ(MissesOf("domtree"), 1u);

  // Explicitly preserve domtree and loops but NOT cfg: the dependency
  // edges must drop all three anyway.
  PreservedAnalyses PA;
  PA.preserve<DominatorTreeAnalysis>();
  PA.preserve<LoopInfoAnalysis>();
  AM.invalidate(PA);
  EXPECT_EQ(InvalidationsOf("cfg"), 1u);
  EXPECT_EQ(InvalidationsOf("domtree"), 1u);
  EXPECT_EQ(InvalidationsOf("loops"), 1u);

  // Everything recomputes from scratch.
  AM.getResult<LoopInfoAnalysis>(F);
  EXPECT_EQ(MissesOf("cfg"), 2u);
  EXPECT_EQ(MissesOf("domtree"), 2u);
  EXPECT_EQ(MissesOf("loops"), 2u);
}

} // namespace
