//===- tests/TestGenTest.cpp - Generator, oracle, and reducer tests -------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the differential harness itself: the generator's contract
/// (determinism, strict verifier cleanliness, termination), the oracle's
/// ability to catch an injected miscompile, and the reducer's ability to
/// shrink such a failure to a small repro -- the PR's acceptance gate.
///
//===----------------------------------------------------------------------===//

#include "sir/Parser.h"
#include "sir/Printer.h"
#include "sir/Verifier.h"
#include "testgen/Generator.h"
#include "testgen/Oracle.h"
#include "testgen/Reducer.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

using namespace fpint;

namespace {

/// A little program with a data-flow-relevant add: c = a + b is stored,
/// reloaded, and emitted, so corrupting any add must change the output
/// stream or the memory image.
const char *AddChain = R"(
global buf 4

func main() {
entry:
  li %a, 100
  li %b, 23
  add %c, %a, %b
  la %p, buf
  sw %c, 0(%p)
  lw %v, 0(%p)
  add %d, %v, %a
  out %v
  out %d
  ret
}
)";

/// Simulates a rewriter bug: the first integer add in main becomes a
/// subtract. Preserves the register set, so the reused allocation map
/// stays valid.
void flipFirstAdd(sir::Module &M) {
  for (auto &F : M.functions()) {
    if (F->name() != "main")
      continue;
    for (auto &BB : F->blocks())
      for (auto &I : BB->instructions())
        if (I->op() == sir::Opcode::Add) {
          I->setOp(sir::Opcode::Sub);
          return;
        }
  }
}

testgen::OracleOptions fastOracle() {
  testgen::OracleOptions Opts;
  // One partitioned variant is enough for the miscompile tests and keeps
  // the reducer's thousands of probes cheap.
  std::vector<testgen::VariantSpec> Keep;
  for (testgen::VariantSpec &V : Opts.Variants)
    if (V.Name == "advanced")
      Keep.push_back(V);
  Opts.Variants = Keep;
  return Opts;
}

} // namespace

TEST(GeneratorTest, Deterministic) {
  testgen::GenConfig Config;
  for (uint64_t Seed : {1ull, 0xdeadbeefull, 42ull}) {
    auto A = testgen::generateModule(Config, Seed);
    auto B = testgen::generateModule(Config, Seed);
    EXPECT_EQ(sir::toString(*A), sir::toString(*B)) << "seed " << Seed;
  }
}

TEST(GeneratorTest, DistinctSeedsGiveDistinctModules) {
  testgen::GenConfig Config;
  std::set<std::string> Texts;
  for (uint64_t Seed = 0; Seed < 8; ++Seed)
    Texts.insert(sir::toString(*testgen::generateModule(Config, Seed)));
  EXPECT_GE(Texts.size(), 7u) << "seeds are barely influencing generation";
}

TEST(GeneratorTest, ModuleSeedMixesBaseAndIteration) {
  std::set<uint64_t> Seeds;
  for (uint64_t Base = 1; Base <= 3; ++Base)
    for (uint64_t It = 0; It < 50; ++It)
      Seeds.insert(testgen::moduleSeed(Base, It));
  EXPECT_EQ(Seeds.size(), 150u);
}

TEST(GeneratorTest, EveryPresetIsStrictVerifierClean) {
  sir::VerifyOptions Strict;
  Strict.CheckDataflow = true;
  for (const std::string &Preset : testgen::presetNames()) {
    testgen::GenConfig Config = testgen::presetConfig(Preset);
    for (uint64_t It = 0; It < 12; ++It) {
      uint64_t Seed = testgen::moduleSeed(7, It);
      auto M = testgen::generateModule(Config, Seed);
      std::vector<std::string> Diags = sir::verify(*M, Strict);
      EXPECT_TRUE(Diags.empty())
          << "preset " << Preset << " seed " << Seed << ": "
          << (Diags.empty() ? "" : Diags.front());
    }
  }
}

TEST(GeneratorTest, GeneratedTextRoundTripsThroughParser) {
  testgen::GenConfig Config;
  for (uint64_t It = 0; It < 6; ++It) {
    auto M = testgen::generateModule(Config, testgen::moduleSeed(11, It));
    std::string Text = sir::toString(*M);
    sir::ParseResult PR = sir::parseModule(Text);
    ASSERT_TRUE(PR.ok()) << PR.Error;
    EXPECT_EQ(Text, sir::toString(*PR.M));
  }
}

TEST(OracleTest, GeneratedModulesPassAllVariants) {
  // The real coverage lives in tools/fpint-fuzz (500 iterations in CI);
  // this is a smoke slice so plain ctest exercises the same path.
  testgen::GenConfig Config = testgen::presetConfig("tiny");
  for (uint64_t It = 0; It < 10; ++It) {
    uint64_t Seed = testgen::moduleSeed(3, It);
    auto M = testgen::generateModule(Config, Seed);
    testgen::OracleReport Report = testgen::runOracle(*M);
    EXPECT_FALSE(Report.BaselineSkipped) << "seed " << Seed;
    for (const std::string &Msg : Report.Mismatches)
      ADD_FAILURE() << "seed " << Seed << ": " << Msg;
  }
}

TEST(OracleTest, PaperVariantBatteryHasExpectedShape) {
  std::vector<testgen::VariantSpec> Variants = testgen::defaultVariants();
  ASSERT_GE(Variants.size(), 4u);
  std::set<std::string> Names;
  for (const testgen::VariantSpec &V : Variants)
    Names.insert(V.Name);
  EXPECT_TRUE(Names.count("none"));
  EXPECT_TRUE(Names.count("basic"));
  EXPECT_TRUE(Names.count("advanced"));
}

TEST(OracleTest, CatchesInjectedMiscompile) {
  sir::ParseResult PR = sir::parseModule(AddChain);
  ASSERT_TRUE(PR.ok()) << PR.Error;

  testgen::OracleOptions Clean = fastOracle();
  ASSERT_TRUE(testgen::runOracle(*PR.M, Clean).ok());

  testgen::OracleOptions Buggy = fastOracle();
  Buggy.CompiledMutator = flipFirstAdd;
  testgen::OracleReport Report = testgen::runOracle(*PR.M, Buggy);
  EXPECT_FALSE(Report.BaselineSkipped);
  EXPECT_FALSE(Report.Mismatches.empty())
      << "oracle accepted a module whose compiled add was flipped to sub";
}

TEST(ReducerTest, ShrinksInjectedMiscompileToSmallRepro) {
  // The acceptance gate: a deliberate compiled-side bug must reduce to a
  // repro of at most 20 instructions.
  testgen::OracleOptions Buggy = fastOracle();
  Buggy.CompiledMutator = flipFirstAdd;
  testgen::InterestingPredicate StillFails =
      [&](const sir::Module &Candidate) {
        testgen::OracleReport R = testgen::runOracle(Candidate, Buggy);
        return !R.BaselineSkipped && !R.Mismatches.empty();
      };

  // Not every module observes its first add in the output, so scan a few
  // seeds for one where the injected bug actually bites.
  testgen::GenConfig Config; // Full-size default modules (~100+ instrs).
  std::string Text;
  for (uint64_t It = 0; It < 32 && Text.empty(); ++It) {
    auto M = testgen::generateModule(Config, testgen::moduleSeed(1, It));
    if (testgen::countInstructions(*M) > 20 && StillFails(*M))
      Text = sir::toString(*M);
  }
  ASSERT_FALSE(Text.empty())
      << "no seed in range observes the flipped add; loosen the mutator";

  testgen::ReducerOptions ROpts;
  ROpts.MaxProbes = 4000;
  testgen::ReduceOutcome Out = testgen::reduceModule(Text, StillFails, ROpts);
  EXPECT_TRUE(Out.Reduced);
  EXPECT_LE(Out.InstrCount, 20u) << Out.Text;

  sir::ParseResult PR = sir::parseModule(Out.Text);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  EXPECT_TRUE(StillFails(*PR.M)) << "reduced repro no longer fails";
}

TEST(ReducerTest, LeavesAlreadyMinimalInputAlone) {
  const char *Minimal = "func main() {\nentry:\n  out %zero\n  ret\n}\n";
  sir::ParseResult PR = sir::parseModule(Minimal);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  // "Interesting" = still prints exactly one value; nothing is deletable.
  testgen::InterestingPredicate Pred = [](const sir::Module &M) {
    unsigned Outs = 0;
    for (const auto &F : M.functions())
      F->forEachInstr([&](const sir::Instruction &I) {
        if (I.op() == sir::Opcode::Out)
          ++Outs;
      });
    return Outs == 1;
  };
  testgen::ReduceOutcome Out = testgen::reduceModule(Minimal, Pred);
  sir::ParseResult RPR = sir::parseModule(Out.Text);
  ASSERT_TRUE(RPR.ok());
  EXPECT_TRUE(Pred(*RPR.M));
  EXPECT_LE(Out.InstrCount, 2u);
}
