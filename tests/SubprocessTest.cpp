//===- tests/SubprocessTest.cpp - Sandboxed task execution ----------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// support::Subprocess containment paths: payload capture, exit-code
/// and signal classification, the SIGTERM -> SIGKILL watchdog
/// escalation, RLIMIT_AS enforcement, stderr-tail capture, and the
/// FPINT_FAULT attempt counter that models transient failures.
///
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <vector>

#include <sys/resource.h>
#include <unistd.h>

using namespace fpint;
using namespace fpint::support;

namespace {

SandboxLimits quickLimits() {
  SandboxLimits L;
  L.WallMs = 10000;
  L.KillGraceMs = 300;
  return L;
}

void sleepMs(int Ms) {
  struct timespec TS = {Ms / 1000, (Ms % 1000) * 1000000L};
  nanosleep(&TS, nullptr);
}

TEST(Subprocess, CapturesPayloadAndExitZero) {
  TaskResult R = Subprocess::run(
      [](int Fd) {
        Subprocess::writeAll(Fd, "hello from the child");
        return 0;
      },
      quickLimits());
  EXPECT_TRUE(R.ok()) << R.describe();
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Payload, "hello from the child");
  EXPECT_FALSE(R.TimedOut);
  EXPECT_GT(R.PeakRssKb, 0);
}

TEST(Subprocess, ClassifiesNonZeroExit) {
  TaskResult R = Subprocess::run([](int) { return 42; }, quickLimits());
  EXPECT_EQ(R.St, TaskResult::Status::ExitNonZero);
  EXPECT_EQ(R.ExitCode, 42);
  EXPECT_FALSE(R.ok());
}

TEST(Subprocess, ClassifiesFatalSignal) {
  TaskResult R = Subprocess::run(
      [](int) -> int {
        // Sanitizer runtimes install a SIGSEGV handler that converts
        // the fault into a report + exit; restore the default
        // disposition so the child genuinely dies by signal.
        signal(SIGSEGV, SIG_DFL);
        raise(SIGSEGV);
        return 0;
      },
      quickLimits());
  EXPECT_EQ(R.St, TaskResult::Status::Signaled);
  EXPECT_EQ(R.TermSignal, SIGSEGV);
  EXPECT_NE(R.describe().find("signal"), std::string::npos);
}

TEST(Subprocess, ChildExceptionBecomesExit125) {
  TaskResult R = Subprocess::run(
      [](int) -> int { throw std::runtime_error("boom in child"); },
      quickLimits());
  EXPECT_EQ(R.St, TaskResult::Status::ExitNonZero);
  EXPECT_EQ(R.ExitCode, 125);
  EXPECT_NE(R.StderrTail.find("boom in child"), std::string::npos);
}

TEST(Subprocess, WatchdogTerminatesCooperativeHang) {
  SandboxLimits L;
  L.WallMs = 200;
  L.KillGraceMs = 2000;
  TaskResult R = Subprocess::run(
      [](int) {
        for (;;)
          sleepMs(50);
        return 0;
      },
      L);
  EXPECT_TRUE(R.TimedOut);
  EXPECT_FALSE(R.Killed); // Default SIGTERM disposition killed it.
  EXPECT_EQ(R.St, TaskResult::Status::Signaled);
  EXPECT_EQ(R.TermSignal, SIGTERM);
}

TEST(Subprocess, WatchdogEscalatesToSigkill) {
  SandboxLimits L;
  L.WallMs = 200;
  L.KillGraceMs = 200;
  TaskResult R = Subprocess::run(
      [](int) {
        std::signal(SIGTERM, SIG_IGN);
        for (;;)
          sleepMs(50);
        return 0;
      },
      L);
  EXPECT_TRUE(R.TimedOut);
  EXPECT_TRUE(R.Killed);
  EXPECT_EQ(R.St, TaskResult::Status::Signaled);
  EXPECT_EQ(R.TermSignal, SIGKILL);
  EXPECT_NE(R.describe().find("timeout"), std::string::npos);
}

TEST(Subprocess, AddressSpaceLimitContainsAllocation) {
#if FPINT_BUILT_WITH_ASAN
  GTEST_SKIP() << "RLIMIT_AS is not applied under ASan (shadow reservation)";
#endif
  SandboxLimits L = quickLimits();
  L.AddressSpaceMb = 64;
  TaskResult R = Subprocess::run(
      [](int) -> int {
        // Try to allocate and touch far more than the limit; the
        // sandbox must stop the child (bad_alloc -> exit 125), never
        // the parent.
        for (int I = 0; I < 512; ++I) {
          char *P = new char[1 << 20];
          std::memset(P, 0xcd, 1 << 20);
        }
        return 0;
      },
      L);
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.TimedOut);
}

TEST(Subprocess, StderrTailKeepsOnlyTheTail) {
  SandboxLimits L = quickLimits();
  L.StderrTailBytes = 64;
  TaskResult R = Subprocess::run(
      [](int) {
        for (int I = 0; I < 1000; ++I)
          std::fprintf(stderr, "line %04d\n", I);
        return 0;
      },
      L);
  EXPECT_TRUE(R.ok());
  EXPECT_LE(R.StderrTail.size(), 64u);
  EXPECT_NE(R.StderrTail.find("0999"), std::string::npos);
  EXPECT_EQ(R.StderrTail.find("0000"), std::string::npos);
}

TEST(Subprocess, FaultAttemptCounterIsInheritedByChild) {
  // The fuzz/bench harnesses call setAttempt() in the parent before
  // each fork; a ":once" spec must see the inherited value. Without
  // FPINT_FAULT in the environment inject() stays inert, so this
  // checks the plumbing, not the fault itself.
  fault::setAttempt(2);
  TaskResult R = Subprocess::run(
      [](int Fd) {
        // inject() must be a no-op here (no FPINT_FAULT in the test
        // environment) -- reaching the write proves it.
        fault::inject("subprocess_test");
        Subprocess::writeAll(Fd, "alive");
        return 0;
      },
      quickLimits());
  fault::setAttempt(1);
  EXPECT_TRUE(R.ok()) << R.describe();
  EXPECT_EQ(R.Payload, "alive");
}

/// Restores RLIMIT_NOFILE and closes filler fds even when an
/// EXPECT/ASSERT bails out of the test early (later tests open fds).
struct FdSqueeze {
  struct rlimit Old;
  std::vector<int> Fillers;
  bool Active = false;

  ~FdSqueeze() {
    for (int Fd : Fillers)
      close(Fd);
    if (Active)
      setrlimit(RLIMIT_NOFILE, &Old);
  }

  /// Lowers the fd limit and fills every free slot except \p Spare.
  bool squeeze(size_t Spare) {
    if (getrlimit(RLIMIT_NOFILE, &Old) != 0)
      return false;
    Active = true;
    struct rlimit RL = Old;
    RL.rlim_cur = highestOpenFd() + 8;
    if (setrlimit(RLIMIT_NOFILE, &RL) != 0)
      return false;
    for (;;) {
      int Fd = dup(0);
      if (Fd < 0)
        break;
      Fillers.push_back(Fd);
    }
    for (size_t I = 0; I < Spare && !Fillers.empty(); ++I) {
      close(Fillers.back());
      Fillers.pop_back();
    }
    return true;
  }

  static int highestOpenFd() {
    int Highest = 2;
    for (const auto &E :
         std::filesystem::directory_iterator("/proc/self/fd"))
      Highest = std::max(Highest, std::atoi(E.path().filename().c_str()));
    return Highest;
  }

  static size_t openFdCount() {
    size_t N = 0;
    for ([[maybe_unused]] const auto &E :
         std::filesystem::directory_iterator("/proc/self/fd"))
      ++N;
    return N;
  }
};

TEST(Subprocess, SpawnFailureLeaksNoDescriptors) {
  // Force the stderr pipe() to fail mid-spawn: leave exactly three
  // free fd slots, so the payload pipe (two fds) opens and the stderr
  // pipe cannot. run() must report SpawnFailed and release the payload
  // pipe's descriptors -- the parent's fd table is unchanged. (Fork
  // failure is not forcible here: RLIMIT_NPROC is not enforced for
  // root, which is what CI containers run as.)
  FdSqueeze Squeeze;
  ASSERT_TRUE(Squeeze.squeeze(3));
  const size_t Before = FdSqueeze::openFdCount();

  TaskResult R = Subprocess::run([](int) { return 0; }, quickLimits());
  EXPECT_EQ(R.St, TaskResult::Status::SpawnFailed);
  EXPECT_EQ(R.describe(), "spawn failed");
  EXPECT_EQ(FdSqueeze::openFdCount(), Before);

  // One free slot: even the first pipe() fails; still no leak. (The
  // remaining slot keeps /proc/self/fd scans possible.)
  for (int I = 0; I < 2; ++I) {
    int Fd = dup(0);
    if (Fd >= 0)
      Squeeze.Fillers.push_back(Fd);
  }
  const size_t Before2 = FdSqueeze::openFdCount();
  R = Subprocess::run([](int) { return 0; }, quickLimits());
  EXPECT_EQ(R.St, TaskResult::Status::SpawnFailed);
  EXPECT_EQ(FdSqueeze::openFdCount(), Before2);
}

} // namespace
