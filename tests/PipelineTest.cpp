//===- tests/PipelineTest.cpp - End-to-end core::Pipeline -----------------===//

#include "core/Pipeline.h"
#include "sir/Parser.h"
#include "sir/Printer.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::core;

namespace {

std::unique_ptr<sir::Module> parseOrDie(const char *Src) {
  sir::ParseResult PR = sir::parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error;
  return std::move(PR.M);
}

TEST(Pipeline, OriginalModuleIsUntouched) {
  auto M = parseOrDie(fixtures::InvalidateForCall);
  std::string Before = sir::toString(*M);
  PipelineConfig Cfg;
  Cfg.Scheme = partition::Scheme::Advanced;
  PipelineRun Run = compileAndMeasure(*M, Cfg);
  ASSERT_TRUE(Run.ok());
  EXPECT_EQ(sir::toString(*M), Before);
  EXPECT_NE(Run.Compiled.get(), M.get());
}

TEST(Pipeline, SchemeNoneIsIdentityPlusAllocation) {
  auto M = parseOrDie(fixtures::IntVectorSum);
  PipelineConfig Cfg;
  Cfg.Scheme = partition::Scheme::None;
  PipelineRun Run = compileAndMeasure(*M, Cfg);
  ASSERT_TRUE(Run.ok());
  EXPECT_EQ(Run.Stats.Fpa, 0u);
  EXPECT_EQ(Run.Rewrite.StaticCopies, 0u);
  EXPECT_TRUE(Run.Compiled->functionByName("main")->isAllocated());
}

TEST(Pipeline, TrainingInputDiffersFromRef) {
  // Profiles from the training input must still produce correct code
  // for a different measurement input (the paper's methodology).
  const char *Src = R"(
global acc 1

func main(%n) {
entry:
  li %i, 0
loop:
  lw %a, acc
  xor %b, %a, %i
  sll %c, %b, 1
  srl %d, %c, 2
  add %e, %d, %a
  sw %e, acc
  addi %i, %i, 1
  slt %t, %i, %n
  bne %t, %zero, loop
  lw %r, acc
  out %r
  ret
}
)";
  auto M = parseOrDie(Src);
  PipelineConfig Cfg;
  Cfg.Scheme = partition::Scheme::Advanced;
  Cfg.TrainArgs = {10};
  Cfg.RefArgs = {5000};
  PipelineRun Run = compileAndMeasure(*M, Cfg);
  ASSERT_TRUE(Run.ok()) << (Run.Errors.empty() ? "?" : Run.Errors[0]);
  EXPECT_TRUE(Run.OutputsMatchOriginal);
}

TEST(Pipeline, PreservesDeterministicTrap) {
  // A deterministic trap (here: out-of-bounds load) is a semantic
  // property of the program. The pipeline must compile it anyway and
  // verify the compiled program traps the same way.
  const char *Src = R"(
func main(%n) {
entry:
  li %p, -100
  lw %v, 0(%p)
  out %v
  ret
}
)";
  auto M = parseOrDie(Src);
  PipelineConfig Cfg;
  Cfg.Scheme = partition::Scheme::Advanced;
  Cfg.TrainArgs = {1};
  Cfg.RefArgs = {1};
  PipelineRun Run = compileAndMeasure(*M, Cfg);
  ASSERT_TRUE(Run.ok()) << (Run.Errors.empty() ? "?" : Run.Errors[0]);
  EXPECT_FALSE(Run.RefResult.Ok);
  EXPECT_EQ(Run.RefResult.Trap.Kind, vm::TrapKind::OobLoad);
  EXPECT_TRUE(Run.OutputsMatchOriginal);
}

TEST(Pipeline, ReportsTrainingFailure) {
  // A resource trap (unbounded recursion -> call-depth guard) says
  // nothing about the program's semantics; the pipeline reports the
  // training run as failed instead of compiling from a junk profile.
  const char *Src = R"(
func main(%n) {
entry:
  call %r, main(%n)
  out %r
  ret
}
)";
  auto M = parseOrDie(Src);
  PipelineConfig Cfg;
  Cfg.TrainArgs = {1};
  Cfg.RefArgs = {1};
  PipelineRun Run = compileAndMeasure(*M, Cfg);
  EXPECT_FALSE(Run.ok());
  ASSERT_FALSE(Run.Errors.empty());
  EXPECT_NE(Run.Errors[0].find("training run failed"), std::string::npos);
}

TEST(Pipeline, SkippingAllocationKeepsVirtualRegisters) {
  auto M = parseOrDie(fixtures::IntVectorSum);
  PipelineConfig Cfg;
  Cfg.Scheme = partition::Scheme::Basic;
  Cfg.RunRegisterAllocation = false;
  PipelineRun Run = compileAndMeasure(*M, Cfg);
  ASSERT_TRUE(Run.ok());
  EXPECT_FALSE(Run.Compiled->functionByName("main")->isAllocated());
}

TEST(Pipeline, SpeedupHelper) {
  timing::SimStats A, B;
  A.Cycles = 1000;
  B.Cycles = 800;
  EXPECT_DOUBLE_EQ(speedup(A, B), 1.25);
  EXPECT_DOUBLE_EQ(speedup(B, A), 0.8);
}

TEST(Pipeline, SimulationIsDeterministic) {
  auto M = parseOrDie(fixtures::InvalidateForCall);
  PipelineConfig Cfg;
  Cfg.Scheme = partition::Scheme::Advanced;
  PipelineRun Run = compileAndMeasure(*M, Cfg);
  ASSERT_TRUE(Run.ok());
  timing::MachineConfig Machine = timing::MachineConfig::fourWay();
  timing::SimStats S1 = simulate(Run, Machine);
  timing::SimStats S2 = simulate(Run, Machine);
  EXPECT_EQ(S1.Cycles, S2.Cycles);
  EXPECT_EQ(S1.Instructions, S2.Instructions);
  EXPECT_EQ(S1.Mispredicts, S2.Mispredicts);
}

TEST(Pipeline, CostParamsFlowThrough) {
  auto M = parseOrDie(fixtures::InvalidateForCall);
  PipelineConfig Loose;
  Loose.Scheme = partition::Scheme::Advanced;
  Loose.Costs.CopyOverhead = 1.5;
  Loose.Costs.DupOverhead = 1.0;
  PipelineRun LooseRun = compileAndMeasure(*M, Loose);
  ASSERT_TRUE(LooseRun.ok());

  PipelineConfig Tight;
  Tight.Scheme = partition::Scheme::Advanced;
  Tight.Costs.CopyOverhead = 50.0;
  Tight.Costs.DupOverhead = 25.0;
  PipelineRun TightRun = compileAndMeasure(*M, Tight);
  ASSERT_TRUE(TightRun.ok());

  // Prohibitive communication costs must shrink the partition.
  EXPECT_LE(TightRun.Stats.fpaFraction(), LooseRun.Stats.fpaFraction());
  EXPECT_LE(TightRun.Stats.Copies + TightRun.Stats.Dups,
            LooseRun.Stats.Copies + LooseRun.Stats.Dups);
}

} // namespace
