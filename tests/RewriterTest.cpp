//===- tests/RewriterTest.cpp - Assignment application mechanics ----------===//

#include "analysis/CFG.h"
#include "analysis/RDG.h"
#include "partition/AdvancedPartitioner.h"
#include "partition/BasicPartitioner.h"
#include "partition/Rewriter.h"
#include "sir/Parser.h"
#include "sir/Printer.h"
#include "sir/Verifier.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::partition;
using namespace fpint::sir;

namespace {

std::unique_ptr<Module> parseOrDie(const char *Src) {
  ParseResult PR = parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error << " at line " << PR.Line;
  return std::move(PR.M);
}

/// Applies a hand-built assignment and checks verification + output
/// equivalence against \p Expected.
void applyAndCheck(Module &M, Function &F, const Assignment &A,
                   const std::vector<int32_t> &Expected,
                   RewriteReport *Report = nullptr) {
  auto Errs = validateAssignment(A);
  ASSERT_TRUE(Errs.empty()) << Errs[0];
  RewriteReport R = applyAssignment(F, A);
  auto Verify = verify(M);
  ASSERT_TRUE(Verify.empty()) << Verify[0] << "\n" << toString(M);
  auto Run = vm::runModule(M);
  ASSERT_TRUE(Run.Ok) << Run.Error;
  EXPECT_EQ(Run.Output, Expected) << toString(M);
  if (Report)
    *Report = R;
}

TEST(Rewriter, RetypeWhenAllDefsAreFpa) {
  // One register, one FPa def, FPa uses only: the register itself is
  // retyped to the FP file -- no shadow register is created.
  auto M = parseOrDie(R"(
global g 1 = 41

func main() {
entry:
  lw %v, g
  addi %w, %v, 1
  sw %w, g
  lw %o, g
  out %o
  ret
}
)");
  Function &F = *M->functionByName("main");
  analysis::CFG Cfg(F);
  analysis::RDG G(F, Cfg);
  Assignment A = partitionBasic(G);

  unsigned RegsBefore = F.numRegs();
  applyAndCheck(*M, F, A, {42});
  // Retype adds no registers for this simple component.
  EXPECT_EQ(F.numRegs(), RegsBefore);
  // The addi is FPa, the load/store are l.s/s.s forms.
  std::string Text = toString(F);
  EXPECT_NE(Text.find("addi,a"), std::string::npos) << Text;
  EXPECT_NE(Text.find("l.s"), std::string::npos);
  EXPECT_NE(Text.find("s.s"), std::string::npos);
}

TEST(Rewriter, ShadowWhenDefsAreMixed) {
  // A register with an INT def (feeding an address) consumed by an FPa
  // chain through a copy: the rewriter must introduce a shadow FP
  // register and a cp_to_fp after the def.
  auto M = parseOrDie(R"(
global tab 8 = 9 8 7 6 5 4 3 2
global sink 1

func main() {
entry:
  li %i, 0
  li %acc, 0
loop:
  sll %off, %i, 2
  la %b, tab
  add %ea, %b, %off
  lw %v, 0(%ea)
  xor %acc, %acc, %v
  sll %acc2, %acc, 1
  sub %acc, %acc2, %acc
  addi %i, %i, 1
  slti %t, %i, 8
  bne %t, %zero, loop
  out %acc
  ret
}
)");
  Function &F = *M->functionByName("main");
  vm::VM::Options Opts;
  Opts.CollectProfile = true;
  vm::VM Prof(*M, Opts);
  auto ProfRun = Prof.run();
  ASSERT_TRUE(ProfRun.Ok);
  auto Expected = ProfRun.Output;

  analysis::CFG Cfg(F);
  analysis::RDG G(F, Cfg);
  analysis::BlockWeights W(*M, &Prof.profile());
  Assignment A = partitionAdvanced(G, W);

  RewriteReport Report;
  applyAndCheck(*M, F, A, Expected, &Report);
  std::string Text = toString(F);
  if (!Report.CopyInstrs.empty() || !Report.DupInstrs.empty()) {
    // Some communication was inserted; it must print as cp_to_fp or an
    // ",a" clone.
    EXPECT_TRUE(Text.find("cp_to_fp") != std::string::npos ||
                Text.find(",a") != std::string::npos)
        << Text;
  }
}

TEST(Rewriter, DuplicateClonesSitNextToOriginals) {
  // The paper's Figure 6: a duplicated induction chain keeps the INT
  // original and adds an adjacent FPa clone.
  auto M = parseOrDie(R"(
global arr 16 = 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16

func main() {
entry:
  li %i, 0
  li %sig, 0
loop:
  sll %off, %i, 2
  la %b, arr
  add %ea, %b, %off
  lw %v, 0(%ea)
  xor %x1, %v, %sig
  sll %x2, %x1, 1
  addi %x3, %x2, 3
  xor %x4, %x3, %v
  andi %sig, %x4, 65535
  addi %i, %i, 1
  slti %t, %i, 16
  bne %t, %zero, loop
  out %sig
  ret
}
)");
  Function &F = *M->functionByName("main");
  vm::VM::Options Opts;
  Opts.CollectProfile = true;
  vm::VM Prof(*M, Opts);
  auto ProfRun = Prof.run();
  ASSERT_TRUE(ProfRun.Ok);

  analysis::CFG Cfg(F);
  analysis::RDG G(F, Cfg);
  analysis::BlockWeights W(*M, &Prof.profile());
  Assignment A = partitionAdvanced(G, W);

  RewriteReport Report;
  applyAndCheck(*M, F, A, ProfRun.Output, &Report);
  for (const Instruction *Dup : Report.DupInstrs) {
    EXPECT_TRUE(Dup->inFpa());
    // The clone sits right after an INT original with the same opcode.
    const sir::BasicBlock *BB = Dup->parent();
    size_t Pos = BB->positionOf(Dup);
    ASSERT_GT(Pos, 0u);
    const Instruction &Orig = *BB->instructions()[Pos - 1];
    EXPECT_EQ(Orig.op(), Dup->op());
    EXPECT_FALSE(Orig.inFpa());
    EXPECT_EQ(Orig.imm(), Dup->imm());
  }
}

TEST(Rewriter, CopyBackRestoresIntegerRegisterForCalls) {
  auto M = parseOrDie(R"(
global data 4 = 10 20 30 40
global acc 1

func use(%v) {
entry:
  lw %a, acc
  add %a2, %a, %v
  sw %a2, acc
  ret
}

func main() {
entry:
  li %i, 0
loop:
  sll %off, %i, 2
  la %b, data
  add %ea, %b, %off
  lw %v, 0(%ea)
  sll %h1, %v, 2
  xor %h2, %h1, %v
  addi %h3, %h2, 9
  sll %h4, %h3, 1
  sub %h5, %h4, %h3
  call use(%h5)
  addi %i, %i, 1
  slti %t, %i, 4
  bne %t, %zero, loop
  lw %r, acc
  out %r
  ret
}
)");
  Function &F = *M->functionByName("main");
  vm::VM::Options Opts;
  Opts.CollectProfile = true;
  vm::VM Prof(*M, Opts);
  auto ProfRun = Prof.run();
  ASSERT_TRUE(ProfRun.Ok);

  analysis::CFG Cfg(F);
  analysis::RDG G(F, Cfg);
  analysis::BlockWeights W(*M, &Prof.profile());
  Assignment A = partitionAdvanced(G, W);

  RewriteReport Report;
  applyAndCheck(*M, F, A, ProfRun.Output, &Report);
  // If the h-chain stayed in FPa, a cp_to_int must restore the call
  // argument; if it moved to INT, no copy-backs exist. Either way the
  // argument register the call consumes is integer class (verified),
  // and any copy-back prints as cp_to_int.
  std::string Text = toString(F);
  if (!Report.CopyBackInstrs.empty())
    EXPECT_NE(Text.find("cp_to_int"), std::string::npos) << Text;
}

TEST(Rewriter, FormalCopyLandsAtEntry) {
  // Force a formal-parameter copy by hand: assign the formal's FPa
  // consumers and mark the formal node Copy.
  auto M = parseOrDie(R"(
func f(%x) {
entry:
  sll %a, %x, 1
  xor %b, %a, %x
  out %b
  ret
}

func main() {
entry:
  li %v, 21
  call f(%v)
  ret
}
)");
  Function &F = *M->functionByName("f");
  analysis::CFG Cfg(F);
  analysis::RDG G(F, Cfg);

  Assignment A(G);
  for (unsigned N = 0; N < G.numNodes(); ++N)
    A.NodeSide[N] = pinnedToInt(G, N) ? Side::Int : Side::Fpa;
  A.Copy[G.formalNode(0)] = true;

  RewriteReport Report;
  applyAndCheck(*M, F, A, {63}, &Report);
  ASSERT_EQ(Report.CopyInstrs.size(), 1u);
  // The copy is the first instruction of the entry block.
  EXPECT_EQ(F.entry()->instructions()[0].get(), Report.CopyInstrs[0]);
  EXPECT_EQ(Report.CopyInstrs[0]->op(), Opcode::CpToFp);
}

TEST(Rewriter, HandBuiltAssignmentRoundTrip) {
  // Manually offload the store-value component and verify the exact
  // code shape (the Figure 2 transformation, by hand).
  auto M = parseOrDie(R"(
global a 2 = 5
global b 2 = 7
global c 2

func main() {
entry:
  lw %va, a
  lw %vb, b
  add %vc, %va, %vb
  sw %vc, c
  lw %o, c
  out %o
  ret
}
)");
  Function &F = *M->functionByName("main");
  analysis::CFG Cfg(F);
  analysis::RDG G(F, Cfg);

  Assignment A(G);
  for (unsigned N = 0; N < G.numNodes(); ++N)
    A.NodeSide[N] = pinnedToInt(G, N) ? Side::Int : Side::Fpa;

  applyAndCheck(*M, F, A, {12});
  std::string Text = toString(F);
  EXPECT_NE(Text.find("add,a"), std::string::npos) << Text;
  EXPECT_NE(Text.find("s.s"), std::string::npos) << Text;
  // Two data loads plus the checking load all become l.s.
  size_t Count = 0;
  for (size_t Pos = Text.find("l.s"); Pos != std::string::npos;
       Pos = Text.find("l.s", Pos + 1))
    ++Count;
  EXPECT_EQ(Count, 3u) << Text;
}

TEST(Rewriter, BasicNeverGrowsCode) {
  for (const char *Src : {R"(
global g 4 = 1 2 3
func main() {
entry:
  lw %a, g
  lw %b, g+4
  add %c, %a, %b
  sw %c, g+8
  out %c
  ret
}
)"}) {
    auto M = parseOrDie(Src);
    Function &F = *M->functionByName("main");
    unsigned Before = F.numInstrIds();
    analysis::CFG Cfg(F);
    analysis::RDG G(F, Cfg);
    Assignment A = partitionBasic(G);
    RewriteReport R = applyAssignment(F, A);
    EXPECT_EQ(R.staticAdded(), 0u);
    EXPECT_EQ(F.numInstrIds(), Before);
  }
}

} // namespace
