//===- tests/CostModelTest.cpp - Section 6.1/6.2 cost machinery -----------===//

#include "analysis/CFG.h"
#include "analysis/RDG.h"
#include "partition/AdvancedPartitioner.h"
#include "partition/BasicPartitioner.h"
#include "partition/CostModel.h"
#include "partition/DotExport.h"
#include "sir/Parser.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace fpint;
using namespace fpint::partition;
using namespace fpint::sir;

namespace {

std::unique_ptr<Module> parseOrDie(const char *Src) {
  ParseResult PR = parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error << " at line " << PR.Line;
  return std::move(PR.M);
}

struct Fixture {
  std::unique_ptr<Module> M;
  Function *F = nullptr;
  std::unique_ptr<analysis::CFG> Cfg;
  std::unique_ptr<analysis::RDG> G;
  std::unique_ptr<vm::VM> Prof;
  std::unique_ptr<analysis::BlockWeights> W;

  explicit Fixture(const char *Src) {
    M = parseOrDie(Src);
    F = M->functionByName("main");
    vm::VM::Options Opts;
    Opts.CollectProfile = true;
    Prof = std::make_unique<vm::VM>(*M, Opts);
    auto R = Prof->run();
    EXPECT_TRUE(R.Ok) << R.Error;
    Cfg = std::make_unique<analysis::CFG>(*F);
    G = std::make_unique<analysis::RDG>(*F, *Cfg);
    W = std::make_unique<analysis::BlockWeights>(*M, &Prof->profile());
  }

  unsigned nodeOf(Opcode Op) const {
    unsigned Found = ~0u;
    F->forEachInstr([&](const Instruction &I) {
      if (I.op() == Op && Found == ~0u)
        Found = G->primaryNode(I);
    });
    EXPECT_NE(Found, ~0u);
    return Found;
  }
};

// A loop whose induction chain is the paper's Figure 6 duplication
// candidate: li (once) feeding addi (loop-carried) feeding address and
// branch work.
const char *InductionLoop = R"(
global t 100

func main() {
entry:
  li %i, 0
loop:
  sll %off, %i, 2
  la %b, t
  add %ea, %b, %off
  sw %i, 0(%ea)
  addi %i, %i, 1
  slti %c, %i, 100
  bne %c, %zero, loop
  lw %o, t+40
  out %o
  ret
}
)";

TEST(CostModel, ExecCountsComeFromProfile) {
  Fixture Fx(InductionLoop);
  CostModel CM(*Fx.G, *Fx.W, CostParams());
  // The loop body runs 100 times; entry once.
  unsigned Addi = Fx.nodeOf(Opcode::AddI);
  unsigned Li = Fx.nodeOf(Opcode::Li);
  EXPECT_DOUBLE_EQ(CM.execCount(Addi), 100.0);
  EXPECT_DOUBLE_EQ(CM.execCount(Li), 1.0);
  EXPECT_DOUBLE_EQ(CM.copyingCost(Addi),
                   CostParams().CopyOverhead * 100.0);
}

TEST(CostModel, DupCostFixpointIgnoresSelfLoops) {
  Fixture Fx(InductionLoop);
  CostParams P;
  CostModel CM(*Fx.G, *Fx.W, P);
  Assignment A(*Fx.G);
  for (unsigned N = 0; N < Fx.G->numNodes(); ++N)
    A.NodeSide[N] = Side::Int;
  CM.recompute(A);

  unsigned Addi = Fx.nodeOf(Opcode::AddI);
  unsigned Li = Fx.nodeOf(Opcode::Li);
  // dup(li) = o_dupl * 1 (no parents).
  EXPECT_DOUBLE_EQ(CM.duplicationCost(Li), P.DupOverhead);
  // dup(addi) = o_dupl*100 + min(copy(li), dup(li)); the self edge from
  // the loop-carried dependence contributes nothing.
  EXPECT_DOUBLE_EQ(CM.duplicationCost(Addi),
                   P.DupOverhead * 100.0 + P.DupOverhead);
  // Duplication beats copying for the induction chain (Figure 6).
  EXPECT_TRUE(CM.preferDuplicate(Addi));
  EXPECT_LT(CM.commCost(Addi), CM.copyingCost(Addi));
}

TEST(CostModel, FpaParentsAreFree) {
  Fixture Fx(InductionLoop);
  CostModel CM(*Fx.G, *Fx.W, CostParams());
  Assignment A(*Fx.G);
  // With the li's node already in FPa, addi's duplication no longer
  // charges for it.
  unsigned Li = Fx.nodeOf(Opcode::Li);
  unsigned Addi = Fx.nodeOf(Opcode::AddI);
  for (unsigned N = 0; N < Fx.G->numNodes(); ++N)
    A.NodeSide[N] = Side::Int;
  A.NodeSide[Li] = Side::Fpa;
  CM.recompute(A);
  EXPECT_DOUBLE_EQ(CM.duplicationCost(Addi),
                   CostParams().DupOverhead * 100.0);
}

TEST(CostModel, IneligibleNodesNeverDuplicate) {
  Fixture Fx(InductionLoop);
  CostModel CM(*Fx.G, *Fx.W, CostParams());
  Assignment A(*Fx.G);
  CM.recompute(A);
  // Loads and stores cannot be duplicated into FPa.
  unsigned LoadVal = ~0u;
  Fx.F->forEachInstr([&](const Instruction &I) {
    if (I.isLoad() && LoadVal == ~0u)
      LoadVal = Fx.G->valueNode(I);
  });
  ASSERT_NE(LoadVal, ~0u);
  EXPECT_TRUE(std::isinf(CM.duplicationCost(LoadVal)));
  EXPECT_FALSE(CM.preferDuplicate(LoadVal));
  // Their communication cost falls back to copying.
  EXPECT_DOUBLE_EQ(CM.commCost(LoadVal), CM.copyingCost(LoadVal));
}

TEST(CostModel, RequiresDupCheaperThanCopy) {
  Fixture Fx(InductionLoop);
  CostParams Bad;
  Bad.CopyOverhead = 2.0;
  Bad.DupOverhead = 3.0; // o_dupl >= o_copy: the paper forbids this.
  EXPECT_DEATH(CostModel(*Fx.G, *Fx.W, Bad), "o_dupl < o_copy");
}

TEST(ValidateAssignment, FlagsMissingCommunication) {
  Fixture Fx(InductionLoop);
  Assignment A(*Fx.G);
  for (unsigned N = 0; N < Fx.G->numNodes(); ++N)
    A.NodeSide[N] = Side::Int;
  // Put the branch in FPa without copying its INT parent.
  unsigned Bne = Fx.nodeOf(Opcode::Bne);
  A.NodeSide[Bne] = Side::Fpa;
  auto Errs = validateAssignment(A);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("without copy/duplicate"), std::string::npos);
}

TEST(ValidateAssignment, FlagsPinnedNodeInFpa) {
  Fixture Fx(InductionLoop);
  Assignment A(*Fx.G);
  unsigned StoreAddr = ~0u;
  Fx.F->forEachInstr([&](const Instruction &I) {
    if (I.isStore() && StoreAddr == ~0u)
      StoreAddr = Fx.G->addressNode(I);
  });
  A.NodeSide[StoreAddr] = Side::Fpa;
  auto Errs = validateAssignment(A);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("pinned"), std::string::npos);
}

TEST(ValidateAssignment, FlagsIneligibleDuplicate) {
  Fixture Fx(InductionLoop);
  Assignment A(*Fx.G);
  unsigned LoadVal = ~0u;
  Fx.F->forEachInstr([&](const Instruction &I) {
    if (I.isLoad() && LoadVal == ~0u)
      LoadVal = Fx.G->valueNode(I);
  });
  A.Dup[LoadVal] = true;
  auto Errs = validateAssignment(A);
  ASSERT_FALSE(Errs.empty());
}

TEST(DotExport, ContainsNodesEdgesAndPartitionShading) {
  Fixture Fx(InductionLoop);
  std::string Plain = toDot(*Fx.G);
  EXPECT_NE(Plain.find("digraph rdg"), std::string::npos);
  EXPECT_NE(Plain.find("->"), std::string::npos);
  EXPECT_NE(Plain.find("[a]"), std::string::npos); // Split address half.
  EXPECT_NE(Plain.find("[v]"), std::string::npos);
  EXPECT_EQ(Plain.find("lightblue"), std::string::npos);

  Assignment A = partitionAdvanced(*Fx.G, *Fx.W);
  std::string Shaded = toDot(*Fx.G, &A);
  EXPECT_NE(Shaded.find("lightblue"), std::string::npos)
      << "expected some FPa shading:\n"
      << Shaded;
}

TEST(LoadBalance, CapReducesOffload) {
  Fixture Fx(InductionLoop);
  CostParams Greedy;
  Assignment AG = partitionAdvanced(*Fx.G, *Fx.W, Greedy);

  CostParams Capped;
  Capped.FpaShareCap = 0.05;
  Assignment AC = partitionAdvanced(*Fx.G, *Fx.W, Capped);
  EXPECT_LE(AC.fpaNodeCount(), AG.fpaNodeCount());
  EXPECT_TRUE(validateAssignment(AC).empty());
}

} // namespace

//===----------------------------------------------------------------------===//
// Figure 7-style Phase 1/2 scenarios: a small component behind a copy is
// evicted; a large one earns its copy.
//===----------------------------------------------------------------------===//

namespace {

TEST(Figure7, SmallComponentBehindCopyIsEvicted) {
  // x is pinned (feeds an address); u and v are two cheap consumers
  // feeding store values. Offloading {u, v} costs one copy of x
  // (o_copy = 4n) for a benefit of 2n: Phase 2 must evict.
  Fixture Fx(R"(
global t 8
global s 8

func main() {
entry:
  li %i, 0
loop:
  la %b, t
  sll %xoff, %i, 2
  add %xea, %b, %xoff
  lw %x, 0(%xea)
  andi %xm, %x, 7
  sll %addr2, %xm, 2
  add %aea, %b, %addr2
  lw %dummy, 0(%aea)
  sll %u, %x, 1
  la %sb, s
  add %sea, %sb, %xoff
  sw %u, 0(%sea)
  xor %v, %x, %i
  sw %v, 4(%sea)
  addi %i, %i, 1
  slti %t1, %i, 8
  bne %t1, %zero, loop
  lw %o, s+4
  out %o
  ret
}
)");
  Assignment A = partitionAdvanced(*Fx.G, *Fx.W);
  EXPECT_TRUE(validateAssignment(A).empty());
  // The sll/xor consumers stay INT: no copies survive for them.
  unsigned Copies = 0;
  for (unsigned N = 0; N < Fx.G->numNodes(); ++N)
    Copies += A.Copy[N] + A.Dup[N];
  const sir::Instruction *U = nullptr, *V = nullptr;
  Fx.F->forEachInstr([&](const sir::Instruction &I) {
    if (I.op() == Opcode::Sll && I.imm() == 1)
      U = &I;
    if (I.op() == Opcode::Xor)
      V = &I;
  });
  ASSERT_NE(U, nullptr);
  ASSERT_NE(V, nullptr);
  EXPECT_FALSE(A.isFpa(Fx.G->primaryNode(*U)));
  EXPECT_FALSE(A.isFpa(Fx.G->primaryNode(*V)));
}

TEST(Figure7, LargeComponentEarnsItsCopy) {
  // Same shape, but the consumers of x form a long chain: benefit 7n
  // against one o_copy*n copy keeps the component in FPa (the paper's
  // Example 2, Profit = 18).
  Fixture Fx(R"(
global t 8
global s 8

func main() {
entry:
  li %i, 0
loop:
  la %b, t
  sll %xoff, %i, 2
  add %xea, %b, %xoff
  lw %x, 0(%xea)
  andi %xm, %x, 7
  sll %addr2, %xm, 2
  add %aea, %b, %addr2
  lw %dummy, 0(%aea)
  sll %p1, %x, 1
  xor %p2, %p1, %x
  addi %p3, %p2, 5
  sll %p4, %p3, 2
  sub %p5, %p4, %p3
  xor %p6, %p5, %p1
  andi %p7, %p6, 4095
  la %sb, s
  add %sea, %sb, %xoff
  sw %p7, 0(%sea)
  addi %i, %i, 1
  slti %t1, %i, 8
  bne %t1, %zero, loop
  lw %o, s+4
  out %o
  ret
}
)");
  Assignment A = partitionAdvanced(*Fx.G, *Fx.W);
  EXPECT_TRUE(validateAssignment(A).empty());
  const sir::Instruction *P7 = nullptr;
  Fx.F->forEachInstr([&](const sir::Instruction &I) {
    if (I.op() == Opcode::AndI && I.imm() == 4095)
      P7 = &I;
  });
  ASSERT_NE(P7, nullptr);
  EXPECT_TRUE(A.isFpa(Fx.G->primaryNode(*P7)))
      << toDot(*Fx.G, &A);
  // Exactly the x load value carries the communication.
  unsigned Comm = 0;
  for (unsigned N = 0; N < Fx.G->numNodes(); ++N)
    Comm += A.Copy[N] + A.Dup[N];
  EXPECT_GE(Comm, 1u);
}

} // namespace
