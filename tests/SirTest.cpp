//===- tests/SirTest.cpp - IR construction, printing, parsing, verifying --===//

#include "sir/IR.h"
#include "sir/IRBuilder.h"
#include "sir/Opcode.h"
#include "sir/Parser.h"
#include "sir/Printer.h"
#include "sir/Verifier.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::sir;

namespace {

//===----------------------------------------------------------------------===//
// Opcode predicates
//===----------------------------------------------------------------------===//

TEST(Opcode, ExactlyTwentyTwoFpaOpcodes) {
  // The paper extends the ISA with 22 opcodes for integer execution in
  // the floating-point subsystem.
  unsigned Count = 0;
  for (unsigned I = 0; I < NumOpcodes; ++I)
    if (fpaSupports(static_cast<Opcode>(I)))
      ++Count;
  EXPECT_EQ(Count, 22u);
}

TEST(Opcode, MulDivNotOffloadable) {
  // "All integer operations except integer multiply and divide are
  // supported in the floating-point subsystem."
  EXPECT_FALSE(fpaSupports(Opcode::Mul));
  EXPECT_FALSE(fpaSupports(Opcode::Div));
  EXPECT_FALSE(fpaSupports(Opcode::Rem));
}

TEST(Opcode, MemoryNeverOffloadable) {
  EXPECT_FALSE(fpaSupports(Opcode::Lw));
  EXPECT_FALSE(fpaSupports(Opcode::Sw));
  EXPECT_FALSE(fpaSupports(Opcode::Lb));
  EXPECT_FALSE(fpaSupports(Opcode::Sb));
  EXPECT_FALSE(fpaSupports(Opcode::Lbu));
}

TEST(Opcode, ControlFlowClassification) {
  EXPECT_TRUE(isIntCondBranch(Opcode::Beq));
  EXPECT_TRUE(isIntCondBranch(Opcode::Bltz));
  EXPECT_FALSE(isIntCondBranch(Opcode::Jump));
  EXPECT_TRUE(isFpCondBranch(Opcode::FBnez));
  EXPECT_TRUE(isBlockEnder(Opcode::Jump));
  EXPECT_TRUE(isBlockEnder(Opcode::Ret));
  EXPECT_FALSE(isBlockEnder(Opcode::Beq));
}

TEST(Opcode, LatenciesMatchTable1) {
  // Table 1: 6-cycle multiply, 12-cycle divide, 1-cycle simple ops.
  EXPECT_EQ(execLatency(ExecClass::IntAlu), 1u);
  EXPECT_EQ(execLatency(ExecClass::IntMul), 6u);
  EXPECT_EQ(execLatency(ExecClass::IntDiv), 12u);
}

//===----------------------------------------------------------------------===//
// Builder and structural accessors
//===----------------------------------------------------------------------===//

TEST(IRBuilder, BuildsCountingLoop) {
  Module M;
  Function *F = M.addFunction("main");
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Loop = F->addBlock("loop");
  BasicBlock *Exit = F->addBlock("exit");

  IRBuilder B(Entry);
  Reg I = F->newReg();
  B.liInto(I, 0);
  Reg N = B.li(10);

  B.setInsertPoint(Loop);
  Reg I2 = B.addi(I, 1);
  B.moveInto(I, I2);
  Reg C = B.slt(I, N);
  B.bne(C, B.li(0), Loop);

  B.setInsertPoint(Exit);
  B.out(I);
  B.ret();

  M.renumber();
  EXPECT_TRUE(verify(M).empty());
  EXPECT_EQ(F->blocks().size(), 3u);
  EXPECT_EQ(F->numInstrIds(), 9u);

  std::vector<BasicBlock *> Succs;
  Loop->successors(Succs);
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0], Loop);
  EXPECT_EQ(Succs[1], Exit);
}

TEST(IR, FallthroughRules) {
  Module M;
  Function *F = M.addFunction("main");
  BasicBlock *A = F->addBlock("a");
  BasicBlock *B2 = F->addBlock("b");
  IRBuilder B(A);
  Reg X = B.li(1);
  B.setInsertPoint(B2);
  B.out(X);
  B.ret();
  M.renumber();
  EXPECT_EQ(A->fallthrough(), B2);
  EXPECT_EQ(B2->fallthrough(), nullptr); // Ends in Ret.
}

TEST(IR, CloneIsDeepAndEquivalent) {
  Module M;
  Function *F = M.addFunction("main");
  M.addGlobal("g", 4, {7});
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder B(Entry);
  Reg V = B.lw(MemOperand::global("g"));
  B.out(V);
  B.ret();
  M.renumber();

  auto Clone = M.clone();
  EXPECT_TRUE(verify(*Clone).empty());
  EXPECT_EQ(toString(M), toString(*Clone));

  // Mutating the clone must not affect the original.
  Clone->functions()[0]->blocks()[0]->instructions()[0]->mem().Offset = 99;
  EXPECT_NE(toString(M), toString(*Clone));
}

TEST(IR, CloneRemapsBranchTargets) {
  Module M;
  Function *F = M.addFunction("main");
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Exit = F->addBlock("exit");
  IRBuilder B(Entry);
  Reg X = B.li(0);
  B.beq(X, X, Exit);
  B.setInsertPoint(Exit);
  B.ret();
  M.renumber();

  auto Clone = M.clone();
  Function *CF = Clone->functionByName("main");
  const Instruction *Br = CF->blocks()[0]->instructions()[1].get();
  EXPECT_EQ(Br->target(), CF->blocks()[1].get());
  EXPECT_NE(Br->target(), Exit);
}

//===----------------------------------------------------------------------===//
// Parser / printer round trip
//===----------------------------------------------------------------------===//

const char *VectorSumSrc = R"(
# Integer vector sum, the paper's Figure 2 shape.
global a 8 = 1 2 3 4 5 6 7 8
global b 8 = 10 20 30 40 50 60 70 80
global c 8

func main() {
entry:
  li %i, 0
  li %n, 8
loop:
  sll %off, %i, 2
  la %pa, a
  add %pa2, %pa, %off
  lw %va, 0(%pa2)
  la %pb, b
  add %pb2, %pb, %off
  lw %vb, 0(%pb2)
  add %vc, %va, %vb
  la %pc, c
  add %pc2, %pc, %off
  sw %vc, 0(%pc2)
  addi %i2, %i, 1
  move %i, %i2
  slt %t, %i, %n
  bne %t, %i0, loop
exit:
  la %pc3, c
  lw %r, 28(%pc3)
  out %r
  ret
}
)";

TEST(Parser, ParsesVectorSum) {
  // %i0 is used before any def; the parser accepts it (reads as zero).
  ParseResult PR = parseModule(VectorSumSrc);
  ASSERT_TRUE(PR.ok()) << PR.Error << " at line " << PR.Line;
  EXPECT_TRUE(verify(*PR.M).empty());
  const Function *F = PR.M->functionByName("main");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->blocks().size(), 3u);
}

TEST(Parser, RoundTripsThroughPrinter) {
  ParseResult PR = parseModule(VectorSumSrc);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  std::string Printed = toString(*PR.M);
  ParseResult PR2 = parseModule(Printed);
  ASSERT_TRUE(PR2.ok()) << PR2.Error << " in:\n" << Printed;
  // Printing the reparsed module must be a fixpoint.
  EXPECT_EQ(toString(*PR2.M), Printed);
}

TEST(Parser, ParsesFpaSuffixAndFpLoads) {
  const char *Src = R"(
global g 4

func main() {
entry:
  li,a %x, 5
  addi,a %y, %x, 3
  l.s %v, g
  add,a %z, %y, %v
  s.s %z, g+4
  blez,a %z, done
  out,a %y
done:
  ret
}
)";
  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error << " at line " << PR.Line;
  EXPECT_TRUE(verify(*PR.M).empty());
  const Function *F = PR.M->functionByName("main");
  const auto &Instrs = F->blocks()[0]->instructions();
  EXPECT_TRUE(Instrs[0]->inFpa());
  EXPECT_EQ(F->regClass(Instrs[0]->def()), RegClass::Fp);
  EXPECT_FALSE(Instrs[2]->inFpa()); // l.s executes in the INT LSU.
  EXPECT_EQ(F->regClass(Instrs[2]->def()), RegClass::Fp);
  EXPECT_TRUE(Instrs[5]->isCondBranch());
  EXPECT_TRUE(Instrs[5]->inFpa());

  // Round trip preserves the FPa annotations.
  std::string Printed = toString(*PR.M);
  EXPECT_NE(Printed.find("li,a"), std::string::npos);
  EXPECT_NE(Printed.find("l.s"), std::string::npos);
  EXPECT_NE(Printed.find("s.s"), std::string::npos);
  ParseResult PR2 = parseModule(Printed);
  ASSERT_TRUE(PR2.ok()) << PR2.Error << " in:\n" << Printed;
  EXPECT_EQ(toString(*PR2.M), Printed);
}

TEST(Parser, ParsesCallsAndFrames) {
  const char *Src = R"(
func add2(%a, %b) {
entry:
  add %s, %a, %b
  ret %s
}

func main() {
entry:
  li %x, 4
  li %y, 38
  call %r, add2(%x, %y)
  sw %r, [frame+0]
  lw %r2, [frame+0]
  out %r2
  call noret()
  ret
}

func noret() {
entry:
  ret
}
)";
  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error << " at line " << PR.Line;
  EXPECT_TRUE(verify(*PR.M).empty());
  std::string Printed = toString(*PR.M);
  ParseResult PR2 = parseModule(Printed);
  ASSERT_TRUE(PR2.ok()) << PR2.Error;
  EXPECT_EQ(toString(*PR2.M), Printed);
}

TEST(Parser, RejectsMalformedInput) {
  auto ExpectError = [](const char *Src, const char *Fragment) {
    ParseResult PR = parseModule(Src);
    EXPECT_FALSE(PR.ok()) << "expected failure for: " << Src;
    EXPECT_NE(PR.Error.find(Fragment), std::string::npos)
        << "got error: " << PR.Error;
  };
  ExpectError("bogus\n", "expected 'global' or 'func'");
  ExpectError("func f() {\n  frobnicate %a\n}\n", "unknown mnemonic");
  ExpectError("func f() {\n  jmp nowhere\n}\n", "unknown label");
  ExpectError("func f() {\n  mul,a %a, %b, %c\n}\n", "',a' suffix");
  ExpectError("func f() {\n  ret\n", "missing '}'");
  ExpectError("global g 2 = 1 2 3\n", "initializer longer");
  ExpectError("func f() {\nx:\nx:\n  ret\n}\n", "duplicate label");
}

TEST(Parser, RejectsRegisterClassConflicts) {
  const char *Src = R"(
func main() {
entry:
  li %x, 1
  fadd %y, %x, %x
  ret
}
)";
  ParseResult PR = parseModule(Src);
  EXPECT_FALSE(PR.ok());
  EXPECT_NE(PR.Error.find("conflicting class"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST(Verifier, CatchesFallOffEnd) {
  Module M;
  Function *F = M.addFunction("main");
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder B(Entry);
  B.li(1);
  M.renumber();
  auto Errs = verify(M);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("fall off"), std::string::npos);
}

TEST(Verifier, CatchesBadFpaAssignment) {
  Module M;
  Function *F = M.addFunction("main");
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder B(Entry);
  Reg A = B.li(3);
  Reg P = B.mul(A, A);
  B.out(P);
  B.ret();
  // Illegally mark the multiply as FPa-resident.
  Entry->instructions()[1]->setInFpa(true);
  M.renumber();
  auto Errs = verify(M);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("not offloadable"), std::string::npos);
}

TEST(Verifier, CatchesUnknownCalleeAndArgMismatch) {
  Module M;
  Function *F = M.addFunction("main");
  BasicBlock *Entry = F->addBlock("entry");
  IRBuilder B(Entry);
  B.call("ghost", {});
  B.ret();
  M.renumber();
  auto Errs = verify(M);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("unknown callee"), std::string::npos);

  Module M2;
  Function *Callee = M2.addFunction("f");
  Callee->addFormal();
  IRBuilder CB(Callee->addBlock("entry"));
  CB.ret();
  Function *Main = M2.addFunction("main");
  IRBuilder MB(Main->addBlock("entry"));
  MB.call("f", {}); // Missing the argument.
  MB.ret();
  M2.renumber();
  auto Errs2 = verify(M2);
  ASSERT_FALSE(Errs2.empty());
  EXPECT_NE(Errs2[0].find("argument count"), std::string::npos);
}

TEST(Verifier, CatchesUnknownGlobal) {
  Module M;
  Function *F = M.addFunction("main");
  IRBuilder B(F->addBlock("entry"));
  Reg V = B.lw(MemOperand::global("missing"));
  B.out(V);
  B.ret();
  M.renumber();
  auto Errs = verify(M);
  ASSERT_FALSE(Errs.empty());
  EXPECT_NE(Errs[0].find("unknown global"), std::string::npos);
}

TEST(Verifier, AcceptsWellFormedFpCode) {
  const char *Src = R"(
global v 2

func main() {
entry:
  l.s %a, v
  l.s %b, v+4
  fadd %c, %a, %b
  fcmplt %t, %a, %c
  fbnez %t, done
  s.s %c, v
done:
  ret
}
)";
  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  EXPECT_TRUE(verify(*PR.M).empty());
}

} // namespace
