//===- tests/TrapTest.cpp - Typed VM trap taxonomy ------------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trap taxonomy itself (names, classification) plus negative VM
/// tests: every abnormal way a module can stop -- including malformed
/// modules the verifier would reject but the VM may still be handed
/// directly -- must surface as a typed trap, never as an assert or a
/// crash of the harness process.
///
//===----------------------------------------------------------------------===//

#include "sir/Parser.h"
#include "stats/StatsRegistry.h"
#include "vm/Trap.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::vm;

namespace {

std::unique_ptr<sir::Module> parseOrDie(const char *Src) {
  sir::ParseResult PR = sir::parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error << " at line " << PR.Line;
  return std::move(PR.M);
}

const TrapKind AllKinds[] = {
    TrapKind::OobLoad,           TrapKind::OobStore,
    TrapKind::UnknownGlobal,     TrapKind::UnknownCallee,
    TrapKind::BadArgCount,       TrapKind::NoMain,
    TrapKind::BadMainArity,      TrapKind::NoEntryBlock,
    TrapKind::ControlFellOffEnd, TrapKind::FuelExhausted,
    TrapKind::CallDepthExceeded, TrapKind::StackOverflow};

TEST(Trap, NamesRoundTrip) {
  for (TrapKind K : AllKinds) {
    EXPECT_NE(std::string(trapKindName(K)), "none");
    EXPECT_EQ(trapKindFromName(trapKindName(K)), K);
  }
  EXPECT_EQ(std::string(trapKindName(TrapKind::None)), "none");
  EXPECT_EQ(trapKindFromName("definitely_not_a_trap"), TrapKind::None);
}

TEST(Trap, Classification) {
  // Resource traps and harness setup errors are never deterministic;
  // everything else (except None) is.
  for (TrapKind K : AllKinds) {
    bool Resource = K == TrapKind::FuelExhausted ||
                    K == TrapKind::CallDepthExceeded ||
                    K == TrapKind::StackOverflow;
    bool Setup = K == TrapKind::NoMain || K == TrapKind::BadMainArity;
    EXPECT_EQ(isResourceTrap(K), Resource) << trapKindName(K);
    EXPECT_EQ(isDeterministicTrap(K), !Resource && !Setup)
        << trapKindName(K);
  }
  EXPECT_FALSE(isResourceTrap(TrapKind::None));
  EXPECT_FALSE(isDeterministicTrap(TrapKind::None));
}

TEST(Trap, OobLoadIsTyped) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %p, -4096
  lw %v, 0(%p)
  out %v
  ret
}
)");
  VM::Result R = runModule(*M);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Trap.Kind, TrapKind::OobLoad);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_EQ(R.Error, R.Trap.message());
}

TEST(Trap, OobStoreIsTyped) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %p, 268435456
  li %v, 1
  sw %v, 0(%p)
  ret
}
)");
  VM::Result R = runModule(*M);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Trap.Kind, TrapKind::OobStore);
}

TEST(Trap, BadArgCountTrapsInsteadOfAsserting) {
  // The verifier rejects this call statically, but the VM can be
  // handed unverified modules (fuzzer mutants, hand-written tests);
  // the arity mismatch must degrade to a trap, not an assert.
  auto M = parseOrDie(R"(
func helper(%a, %b) {
entry:
  add %s, %a, %b
  ret %s
}

func main() {
entry:
  li %x, 1
  call %r, helper(%x)
  out %r
  ret
}
)");
  VM::Result R = runModule(*M);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Trap.Kind, TrapKind::BadArgCount);
  EXPECT_NE(R.Error.find("helper"), std::string::npos);
}

TEST(Trap, UnknownCalleeTrapsVmDirect) {
  auto M = parseOrDie(R"(
func main() {
entry:
  call %r, nosuch()
  out %r
  ret
}
)");
  VM::Result R = runModule(*M);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Trap.Kind, TrapKind::UnknownCallee);
}

TEST(Trap, MainArityIsSetupErrorNotProgramTrap) {
  auto M = parseOrDie(R"(
func main(%n) {
entry:
  out %n
  ret
}
)");
  VM::Result R = runModule(*M, /*MainArgs=*/{});
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Trap.Kind, TrapKind::BadMainArity);
  EXPECT_FALSE(isDeterministicTrap(R.Trap.Kind));
}

TEST(Trap, NoMain) {
  auto M = parseOrDie(R"(
func notmain() {
entry:
  ret
}
)");
  VM::Result R = runModule(*M);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Trap.Kind, TrapKind::NoMain);
}

TEST(Trap, FuelExhaustedIsResource) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %t, 1
loop:
  bne %t, %zero, loop
  ret
}
)");
  VM::Options Opts;
  Opts.MaxSteps = 100;
  VM Machine(*M, Opts);
  VM::Result R = Machine.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Trap.Kind, TrapKind::FuelExhausted);
  EXPECT_TRUE(isResourceTrap(R.Trap.Kind));
}

TEST(Trap, CallDepthGuardFiresBeforeNativeStack) {
  auto M = parseOrDie(R"(
func main() {
entry:
  call %r, main()
  out %r
  ret
}
)");
  // Must trap (not segfault the host). Which resource guard fires
  // first depends on the build's native frame size: the depth limit in
  // a plain build, the byte backstop under sanitizer-inflated frames.
  VM::Result R = runModule(*M);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.Trap.Kind == TrapKind::CallDepthExceeded ||
              R.Trap.Kind == TrapKind::StackOverflow)
      << trapKindName(R.Trap.Kind);
  EXPECT_TRUE(isResourceTrap(R.Trap.Kind));
}

TEST(Trap, KindIsRecordedInTelemetryJson) {
  stats::StatsRegistry Reg;
  core::PipelineConfig Cfg;
  timing::MachineConfig Machine = timing::MachineConfig::fourWay();
  timing::SimStats Stats;
  Reg.record("trapper", Cfg, Machine, Stats, TrapKind::OobLoad);
  std::string Json = Reg.reportJson("trap_test").dump();
  EXPECT_NE(Json.find("\"trap\""), std::string::npos);
  EXPECT_NE(Json.find("oob_load"), std::string::npos);
}

} // namespace
