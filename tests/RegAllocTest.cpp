//===- tests/RegAllocTest.cpp - Linear-scan register allocation -----------===//

#include "partition/Partitioner.h"
#include "regalloc/Allocator.h"
#include "regalloc/LiveIntervals.h"
#include "regalloc/RegAlloc.h"
#include "sir/Parser.h"
#include "sir/Printer.h"
#include "sir/Verifier.h"
#include "support/Rng.h"
#include "vm/VM.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::regalloc;
using namespace fpint::sir;

namespace {

std::unique_ptr<Module> parseOrDie(const char *Src) {
  ParseResult PR = parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error << " at line " << PR.Line;
  return std::move(PR.M);
}

/// Allocates a clone of \p M with the named backend and checks
/// verification + VM equivalence.
std::unique_ptr<Module>
allocateAndCheckWith(const std::string &Allocator, const Module &Original,
                     ModuleAlloc *OutAlloc = nullptr) {
  auto M = Original.clone();
  ModuleAlloc Alloc = allocateModuleWith(Allocator, *M);
  EXPECT_TRUE(Alloc.Errors.empty()) << Alloc.Errors[0];
  auto Verify = verify(*M);
  EXPECT_TRUE(Verify.empty()) << Verify[0] << "\n" << toString(*M);

  auto OrigRun = vm::runModule(Original);
  auto AllocRun = vm::runModule(*M);
  EXPECT_TRUE(OrigRun.Ok) << OrigRun.Error;
  EXPECT_TRUE(AllocRun.Ok) << AllocRun.Error << "\n" << toString(*M);
  EXPECT_EQ(OrigRun.Output, AllocRun.Output)
      << "allocated program diverged:\n"
      << toString(*M);
  if (OutAlloc)
    *OutAlloc = std::move(Alloc);
  return M;
}

/// Default-backend form used by the incumbent's tests.
std::unique_ptr<Module> allocateAndCheck(const Module &Original,
                                         ModuleAlloc *OutAlloc = nullptr) {
  return allocateAndCheckWith("", Original, OutAlloc);
}

TEST(RegAlloc, StraightLineCode) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 5
  li %b, 7
  add %c, %a, %b
  mul %d, %c, %c
  out %d
  ret
}
)");
  ModuleAlloc Alloc;
  auto A = allocateAndCheck(*M, &Alloc);
  const Function *F = A->functionByName("main");
  EXPECT_TRUE(F->isAllocated());
  const FuncAlloc &FA = Alloc.Funcs.at(F);
  EXPECT_EQ(FA.SpilledIntervals, 0u);
  // Every operand register is mapped to an architectural index < 32.
  F->forEachInstr([&](const Instruction &I) {
    if (I.def().isValid()) {
      EXPECT_LT(Alloc.archIndexOf(F, I.def()), ArchLayout::FileSize);
    }
    I.forEachUse([&](Reg R, UseKind) {
      EXPECT_LT(Alloc.archIndexOf(F, R), ArchLayout::FileSize);
    });
  });
}

TEST(RegAlloc, CallsUseArgumentRegisters) {
  auto M = parseOrDie(R"(
func add3(%x, %y, %z) {
entry:
  add %s, %x, %y
  add %s2, %s, %z
  ret %s2
}

func main() {
entry:
  li %a, 10
  li %b, 20
  li %c, 12
  call %r, add3(%a, %b, %c)
  out %r
  ret
}
)");
  ModuleAlloc Alloc;
  auto A = allocateAndCheck(*M, &Alloc);

  // Callee formals are the architectural argument registers 0..2.
  const Function *Callee = A->functionByName("add3");
  ASSERT_EQ(Callee->formals().size(), 3u);
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_EQ(Alloc.archIndexOf(Callee, Callee->formals()[I]), I);

  // The caller's call instruction passes those same indices, and its
  // result arrives in the return register.
  const Function *Main = A->functionByName("main");
  const Instruction *Call = nullptr;
  Main->forEachInstr([&](const Instruction &I) {
    if (I.op() == Opcode::Call)
      Call = &I;
  });
  ASSERT_NE(Call, nullptr);
  for (unsigned I = 0; I < 3; ++I)
    EXPECT_EQ(Alloc.archIndexOf(Main, Call->uses()[I]), I);
  EXPECT_EQ(Alloc.archIndexOf(Main, Call->def()), ArchLayout::RetReg);
}

TEST(RegAlloc, HighPressureSpills) {
  // 30 simultaneously live values exceed the 24 allocatable integer
  // registers; the allocator must spill yet preserve results.
  std::string Src = "func main() {\nentry:\n";
  for (int I = 0; I < 30; ++I)
    Src += "  li %v" + std::to_string(I) + ", " + std::to_string(I * 3 + 1) +
           "\n";
  // Consume them in reverse so every interval spans the block.
  Src += "  li %acc, 0\n";
  for (int I = 29; I >= 0; --I)
    Src += "  add %acc, %acc, %v" + std::to_string(I) + "\n";
  Src += "  out %acc\n  ret\n}\n";

  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  ModuleAlloc Alloc;
  auto A = allocateAndCheck(*PR.M, &Alloc);
  const FuncAlloc &FA = Alloc.Funcs.at(A->functionByName("main"));
  EXPECT_GT(FA.SpilledIntervals, 0u);
  EXPECT_GT(FA.SpillCode, 0u);
  EXPECT_GT(FA.SpillSlots, 0u);
}

TEST(RegAlloc, ValuesLiveAcrossCallsUseCalleeSaved) {
  auto M = parseOrDie(R"(
func leaf(%x) {
entry:
  addi %r, %x, 1
  ret %r
}

func main() {
entry:
  li %keep, 1000
  li %i, 0
loop:
  call %t, leaf(%i)
  add %keep, %keep, %t
  addi %i, %i, 1
  slti %c, %i, 10
  bne %c, %zero, loop
  out %keep
  ret
}
)");
  ModuleAlloc Alloc;
  auto A = allocateAndCheck(*M, &Alloc);
  const FuncAlloc &FA = Alloc.Funcs.at(A->functionByName("main"));
  // %keep and %i survive calls: callee-saved registers get used and
  // saved/restored (real loads/stores).
  EXPECT_GT(FA.CalleeSavedUsedInt, 0u);
  EXPECT_GT(FA.SpillCode, 0u);
}

TEST(RegAlloc, NeverDefinedRegistersReadZero) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 3
  add %b, %a, %phantom
  out %b
  beq %a, %other, skip
  out %a
skip:
  ret
}
)");
  auto A = allocateAndCheck(*M);
  auto R = vm::runModule(*A);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Output, (std::vector<int32_t>{3, 3}));
}

TEST(RegAlloc, PartitionedCodeAllocatesBothFiles) {
  // The paper's flow: partition first, then allocate; FPa operands get
  // FP registers.
  auto Original = parseOrDie(fixtures::InvalidateForCall);
  auto M = Original->clone();
  vm::VM::Options ProfOpts;
  ProfOpts.CollectProfile = true;
  vm::VM Prof(*M, ProfOpts);
  ASSERT_TRUE(Prof.run().Ok);
  auto RW = partition::partitionModule(*M, partition::Scheme::Advanced,
                                       &Prof.profile());
  ASSERT_TRUE(RW.Errors.empty());

  ModuleAlloc Alloc;
  auto A = allocateAndCheck(*M, &Alloc);
  const Function *F = A->functionByName("main");
  unsigned FpaOps = 0;
  F->forEachInstr([&](const Instruction &I) {
    if (!I.inFpa())
      return;
    ++FpaOps;
    if (I.def().isValid()) {
      EXPECT_EQ(F->regClass(I.def()), RegClass::Fp);
    }
  });
  EXPECT_GT(FpaOps, 0u);
}

TEST(RegAlloc, FpWorkloadAllocation) {
  const char *Src = R"(
global vec 8 = 0 0 0 0 0 0 0 0

func main() {
entry:
  li %i, 0
  fli %sum, 0.0
loop:
  cp_to_fp %fb, %i
  cvtif %fi, %fb
  fmul %sq, %fi, %fi
  fadd %sum, %sum, %sq
  sll %off, %i, 2
  la %vp, vec
  add %ea, %vp, %off
  s.s %sq, 0(%ea)
  addi %i, %i, 1
  slti %t, %i, 8
  bne %t, %zero, loop
  cp_to_int %bits, %sum
  out %bits
  ret
}
)";
  auto M = parseOrDie(Src);
  allocateAndCheck(*M);
}

//===----------------------------------------------------------------------===//
// Randomized property: allocation never changes semantics, with and
// without prior partitioning.
//===----------------------------------------------------------------------===//

std::string randomAllocProgram(uint64_t Seed) {
  Rng R(Seed);
  std::string Src = "global arr 32 = ";
  for (int I = 0; I < 16; ++I)
    Src += std::to_string(R.nextInRange(0, 99)) + " ";
  Src += "\nfunc mix(%a, %b) {\nentry:\n  xor %x, %a, %b\n  andi %m, %x, "
         "31\n  ret %m\n}\n";
  Src += "func main() {\nentry:\n";
  unsigned NumVals = 3 + R.nextBelow(8); // Up to 10 locals.
  for (unsigned I = 0; I < NumVals; ++I)
    Src += "  li %v" + std::to_string(I) + ", " +
           std::to_string(R.nextInRange(0, 63)) + "\n";
  Src += "  li %i, 0\n  la %p, arr\nloop:\n";
  unsigned Steps = 4 + R.nextBelow(8);
  for (unsigned S = 0; S < Steps; ++S) {
    unsigned A = R.nextBelow(NumVals), B = R.nextBelow(NumVals),
             D = R.nextBelow(NumVals);
    std::string SA = "%v" + std::to_string(A), SB = "%v" + std::to_string(B),
                SD = "%v" + std::to_string(D);
    switch (R.nextBelow(6)) {
    case 0:
      Src += "  add " + SD + ", " + SA + ", " + SB + "\n";
      break;
    case 1:
      Src += "  sub " + SD + ", " + SA + ", " + SB + "\n";
      break;
    case 2:
      Src += "  andi %x" + std::to_string(S) + ", " + SA + ", 31\n  sll %y" +
             std::to_string(S) + ", %x" + std::to_string(S) +
             ", 2\n  add %e" + std::to_string(S) + ", %p, %y" +
             std::to_string(S) + "\n  lw " + SD + ", 0(%e" +
             std::to_string(S) + ")\n";
      break;
    case 3:
      Src += "  andi %x" + std::to_string(S) + ", " + SA + ", 31\n  sll %y" +
             std::to_string(S) + ", %x" + std::to_string(S) +
             ", 2\n  add %e" + std::to_string(S) + ", %p, %y" +
             std::to_string(S) + "\n  sw " + SB + ", 0(%e" +
             std::to_string(S) + ")\n";
      break;
    case 4:
      Src += "  call %r" + std::to_string(S) + ", mix(" + SA + ", " + SB +
             ")\n  add " + SD + ", " + SD + ", %r" + std::to_string(S) + "\n";
      break;
    case 5:
      Src += "  slti %c" + std::to_string(S) + ", " + SA + ", 32\n";
      Src += "  beq %c" + std::to_string(S) + ", %zero, sk" +
             std::to_string(S) + "\n";
      Src += "  xori " + SD + ", " + SD + ", 5\n";
      Src += "sk" + std::to_string(S) + ":\n";
      break;
    }
  }
  Src += "  addi %i, %i, 1\n  slti %t, %i, 12\n  bne %t, %zero, loop\n";
  for (unsigned I = 0; I < NumVals; ++I)
    Src += "  out %v" + std::to_string(I) + "\n";
  Src += "  ret\n}\n";
  return Src;
}

class RegAllocProperty : public ::testing::TestWithParam<int> {};

TEST_P(RegAllocProperty, RandomProgramsStayEquivalent) {
  std::string Src = randomAllocProgram(static_cast<uint64_t>(GetParam()) *
                                       104729);
  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error << "\n" << Src;
  auto OrigRun = vm::runModule(*PR.M);
  ASSERT_TRUE(OrigRun.Ok) << OrigRun.Error << "\n" << Src;

  // Plain allocation, under both registered backends.
  allocateAndCheck(*PR.M);
  allocateAndCheckWith("regalloc-linear", *PR.M);

  // Partition (advanced), then allocate: the paper's full compilation
  // flow.
  auto M2 = PR.M->clone();
  vm::VM::Options ProfOpts;
  ProfOpts.CollectProfile = true;
  vm::VM Prof(*M2, ProfOpts);
  ASSERT_TRUE(Prof.run().Ok);
  auto RW = partition::partitionModule(*M2, partition::Scheme::Advanced,
                                       &Prof.profile());
  ASSERT_TRUE(RW.Errors.empty()) << RW.Errors[0];
  auto A2 = allocateAndCheck(*M2);
  auto Run2 = vm::runModule(*A2);
  ASSERT_TRUE(Run2.Ok) << Run2.Error;
  ASSERT_EQ(Run2.Output, OrigRun.Output)
      << "partition+alloc diverged for seed " << GetParam() << "\n"
      << Src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegAllocProperty, ::testing::Range(0, 30));

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// LiveIntervals: construction, AnalysisManager caching, invalidation.
//===----------------------------------------------------------------------===//

/// Builds LiveIntervals for \p Name directly (no manager).
LiveIntervals buildIntervals(Module &M, const char *Name,
                             Function **OutF = nullptr) {
  Function *F = M.functionByName(Name);
  EXPECT_NE(F, nullptr);
  F->renumber();
  analysis::CFG Cfg(*F);
  Liveness Live(*F, Cfg);
  if (OutF)
    *OutF = F;
  return LiveIntervals(*F, Cfg, Live);
}

TEST(LiveIntervals, StraightLineHulls) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 5
  li %b, 7
  add %c, %a, %b
  out %c
  ret
}
)");
  Function *F = nullptr;
  LiveIntervals LI = buildIntervals(*M, "main", &F);

  // Positions are 2 apart in block order.
  unsigned Prev = ~0u;
  F->forEachInstr([&](const Instruction &I) {
    unsigned P = LI.instrPos(I.id());
    if (Prev != ~0u)
      EXPECT_EQ(P, Prev + 2);
    Prev = P;
  });

  // %a: defined by the first li, last used by the add; the hull spans
  // exactly def..use and carries both event flags.
  const Instruction *DefA = nullptr, *Add = nullptr;
  F->forEachInstr([&](const Instruction &I) {
    if (!DefA)
      DefA = &I;
    if (I.op() == Opcode::Add)
      Add = &I;
  });
  ASSERT_NE(Add, nullptr);
  const LiveIntervals::Range &A = LI.range(DefA->def());
  EXPECT_EQ(A.Start, LI.instrPos(DefA->id()));
  EXPECT_EQ(A.End, LI.instrPos(Add->id()));
  EXPECT_TRUE(A.Defined);
  EXPECT_TRUE(A.Used);
  EXPECT_FALSE(A.CrossesCall);
  EXPECT_TRUE(LI.callPositions().empty());
}

TEST(LiveIntervals, CallCrossingIsStrictlyInside) {
  auto M = parseOrDie(R"(
func leaf(%x) {
entry:
  addi %r, %x, 1
  ret %r
}

func main() {
entry:
  li %keep, 100
  li %dead, 1
  out %dead
  call %t, leaf(%dead)
  add %s, %keep, %t
  out %s
  ret
}
)");
  Function *F = nullptr;
  LiveIntervals LI = buildIntervals(*M, "main", &F);
  ASSERT_EQ(LI.callPositions().size(), 1u);

  const Instruction *DefKeep = nullptr, *Call = nullptr;
  F->forEachInstr([&](const Instruction &I) {
    if (!DefKeep)
      DefKeep = &I;
    if (I.op() == Opcode::Call)
      Call = &I;
  });
  ASSERT_NE(Call, nullptr);
  // %keep is defined before and used after the call: crossing.
  EXPECT_TRUE(LI.range(DefKeep->def()).CrossesCall);
  // %dead's last use is the call itself (an endpoint, not strictly
  // inside), and the call's own def starts at the call: no crossing.
  EXPECT_FALSE(LI.range(Call->uses()[0]).CrossesCall);
  EXPECT_FALSE(LI.range(Call->def()).CrossesCall);
}

TEST(LiveIntervals, CachedAndInvalidatedThroughManager) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 1
  out %a
  ret
}
)");
  Function *F = M->functionByName("main");
  F->renumber();
  analysis::AnalysisManager AM;

  const LiveIntervals &First = AM.getResult<LiveIntervalsAnalysis>(*F);
  const LiveIntervals &Again = AM.getResult<LiveIntervalsAnalysis>(*F);
  EXPECT_EQ(&First, &Again);

  // One miss each for live-intervals and its cfg/liveness inputs; the
  // second fetch is a pure hit.
  const auto &ByName = AM.countersByAnalysis();
  EXPECT_EQ(ByName.at("live-intervals").Misses, 1u);
  EXPECT_EQ(ByName.at("live-intervals").Hits, 1u);
  EXPECT_EQ(ByName.at("cfg").Misses, 1u);
  EXPECT_EQ(ByName.at("liveness").Misses, 1u);

  // Function-level invalidation recomputes everything.
  AM.invalidateFunction(*F);
  AM.getResult<LiveIntervalsAnalysis>(*F);
  EXPECT_EQ(AM.countersByAnalysis().at("live-intervals").Misses, 2u);
  EXPECT_EQ(AM.countersByAnalysis().at("cfg").Misses, 2u);
}

TEST(LiveIntervals, DependencyInvalidationCascades) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 1
  out %a
  ret
}
)");
  Function *F = M->functionByName("main");
  F->renumber();
  analysis::AnalysisManager AM;
  AM.getResult<LiveIntervalsAnalysis>(*F);

  // A pass that preserves live-intervals by name but not liveness
  // still drops the intervals: they depended on a dropped entry.
  analysis::PreservedAnalyses PA;
  PA.preserve<LiveIntervalsAnalysis>();
  PA.preserve<analysis::CFGAnalysis>();
  AM.invalidate(PA);
  AM.getResult<LiveIntervalsAnalysis>(*F);
  const auto &ByName = AM.countersByAnalysis();
  EXPECT_EQ(ByName.at("live-intervals").Misses, 2u);
  // The preserved CFG survived and was a hit on recompute.
  EXPECT_EQ(ByName.at("cfg").Misses, 1u);
  EXPECT_GE(ByName.at("cfg").Hits, 1u);
}

//===----------------------------------------------------------------------===//
// AllocatorRegistry and backend selection.
//===----------------------------------------------------------------------===//

TEST(AllocatorRegistry, BuiltinBackendsAreRegistered) {
  AllocatorRegistry &R = AllocatorRegistry::global();
  EXPECT_TRUE(R.contains("regalloc"));
  EXPECT_TRUE(R.contains("regalloc-linear"));
  EXPECT_FALSE(R.contains("regalloc-graph-color"));
  auto Inc = R.create("regalloc");
  ASSERT_NE(Inc, nullptr);
  EXPECT_STREQ(Inc->name(), "regalloc");
  auto Lin = R.create("regalloc-linear");
  ASSERT_NE(Lin, nullptr);
  EXPECT_STREQ(Lin->name(), "regalloc-linear");
  EXPECT_EQ(R.create("regalloc-graph-color"), nullptr);
}

TEST(AllocatorRegistry, UnknownBackendErrorsCleanly) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 1
  out %a
  ret
}
)");
  ModuleAlloc Alloc = allocateModuleWith("regalloc-bogus", *M);
  ASSERT_EQ(Alloc.Errors.size(), 1u);
  EXPECT_NE(Alloc.Errors[0].find("regalloc-bogus"), std::string::npos);
  EXPECT_TRUE(Alloc.Funcs.empty());
  // The module was not touched: still allocatable by a real backend.
  allocateAndCheck(*M);
}

TEST(AllocatorRegistry, EmptyNameSelectsDefault) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 1
  out %a
  ret
}
)");
  auto C = M->clone();
  ModuleAlloc Alloc = allocateModuleWith("", *C);
  EXPECT_TRUE(Alloc.Errors.empty());
  EXPECT_EQ(Alloc.AllocatorName, std::string(defaultAllocatorName()));
}

//===----------------------------------------------------------------------===//
// Linear scan ("regalloc-linear"): same contract, different policy.
//===----------------------------------------------------------------------===//

TEST(LinearScan, SpillsAtExhaustion) {
  // Same high-pressure program as the incumbent's spill test: 30
  // block-spanning integer intervals overflow the 24 allocatable
  // registers under any policy.
  std::string Src = "func main() {\nentry:\n";
  for (int I = 0; I < 30; ++I)
    Src += "  li %v" + std::to_string(I) + ", " + std::to_string(I * 3 + 1) +
           "\n";
  Src += "  li %acc, 0\n";
  for (int I = 29; I >= 0; --I)
    Src += "  add %acc, %acc, %v" + std::to_string(I) + "\n";
  Src += "  out %acc\n  ret\n}\n";

  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  ModuleAlloc Alloc;
  auto A = allocateAndCheckWith("regalloc-linear", *PR.M, &Alloc);
  EXPECT_EQ(Alloc.AllocatorName, "regalloc-linear");
  const FuncAlloc &FA = Alloc.Funcs.at(A->functionByName("main"));
  EXPECT_GT(FA.SpilledIntervals, 0u);
  EXPECT_GT(FA.SpillCode, 0u);
  EXPECT_GT(FA.SpillSlots, 0u);
  EXPECT_EQ(FA.SpillLoads + FA.SpillStores + FA.CalleeSaveStores +
                FA.CalleeSaveRestores,
            FA.SpillCode);
}

TEST(LinearScan, CallCrossersTakeCalleeSavedOrSpill) {
  auto M = parseOrDie(R"(
func leaf(%x) {
entry:
  addi %r, %x, 1
  ret %r
}

func main() {
entry:
  li %keep, 1000
  li %i, 0
loop:
  call %t, leaf(%i)
  add %keep, %keep, %t
  addi %i, %i, 1
  slti %c, %i, 10
  bne %c, %zero, loop
  out %keep
  ret
}
)");
  ModuleAlloc Alloc;
  auto A = allocateAndCheckWith("regalloc-linear", *M, &Alloc);
  const FuncAlloc &FA = Alloc.Funcs.at(A->functionByName("main"));
  // %keep and %i cross the call: they land in callee-saved registers
  // (saved and restored) or spill -- never in a caller-saved register.
  EXPECT_TRUE(FA.CalleeSavedUsedInt > 0 || FA.SpilledIntervals > 0);
  EXPECT_GT(FA.SpillCode, 0u);
}

TEST(LinearScan, ClassesAllocateFromSeparateFiles) {
  const char *Src = R"(
global vec 8 = 0 0 0 0 0 0 0 0

func main() {
entry:
  li %i, 0
  fli %sum, 0.0
loop:
  cp_to_fp %fb, %i
  cvtif %fi, %fb
  fmul %sq, %fi, %fi
  fadd %sum, %sum, %sq
  sll %off, %i, 2
  la %vp, vec
  add %ea, %vp, %off
  s.s %sq, 0(%ea)
  addi %i, %i, 1
  slti %t, %i, 8
  bne %t, %zero, loop
  cp_to_int %bits, %sum
  out %bits
  ret
}
)";
  auto M = parseOrDie(Src);
  ModuleAlloc Alloc;
  auto A = allocateAndCheckWith("regalloc-linear", *M, &Alloc);
  // Every FP-class register maps into the FP file's index space and
  // every INT-class one into the INT file's; the verifier has already
  // checked operand classes, so here we only need the map to be total.
  const Function *F = A->functionByName("main");
  F->forEachInstr([&](const Instruction &I) {
    if (I.def().isValid())
      EXPECT_LT(Alloc.archIndexOf(F, I.def()), ArchLayout::FileSize);
  });
}

TEST(LinearScan, FpaPartitionConstraintsHonored) {
  // Partition first (advanced), then linear-scan allocate: FPa
  // operands are RegClass::Fp and must come out of the FP file.
  auto Original = parseOrDie(fixtures::InvalidateForCall);
  auto M = Original->clone();
  vm::VM::Options ProfOpts;
  ProfOpts.CollectProfile = true;
  vm::VM Prof(*M, ProfOpts);
  ASSERT_TRUE(Prof.run().Ok);
  auto RW = partition::partitionModule(*M, partition::Scheme::Advanced,
                                       &Prof.profile());
  ASSERT_TRUE(RW.Errors.empty());

  ModuleAlloc Alloc;
  auto A = allocateAndCheckWith("regalloc-linear", *M, &Alloc);
  const Function *F = A->functionByName("main");
  unsigned FpaOps = 0;
  F->forEachInstr([&](const Instruction &I) {
    if (!I.inFpa())
      return;
    ++FpaOps;
    if (I.def().isValid()) {
      EXPECT_EQ(F->regClass(I.def()), RegClass::Fp);
    }
  });
  EXPECT_GT(FpaOps, 0u);
}

TEST(LinearScan, PaperCorpusEquivalentUnderBothBackends) {
  for (const char *Src : {fixtures::IntVectorSum, fixtures::InvalidateForCall,
                          fixtures::MemoryFreeRand}) {
    auto Original = parseOrDie(Src);
    auto BaseRun = vm::runModule(*Original);
    ASSERT_TRUE(BaseRun.Ok) << BaseRun.Error;
    for (const char *Backend : {"regalloc", "regalloc-linear"}) {
      auto A = allocateAndCheckWith(Backend, *Original);
      auto Run = vm::runModule(*A);
      ASSERT_TRUE(Run.Ok) << Backend << ": " << Run.Error;
      EXPECT_EQ(Run.Output, BaseRun.Output) << Backend;
      EXPECT_EQ(Run.ExitValue, BaseRun.ExitValue) << Backend;
    }
  }
}

TEST(ArchLayout, RegionsPartitionTheFile) {
  // Argument, return, caller-saved, callee-saved, scratch, and zero
  // regions must tile the 32-entry file without overlap.
  using L = regalloc::ArchLayout;
  EXPECT_EQ(L::NumArgRegs, 4u);
  EXPECT_EQ(L::RetReg, 4u);
  EXPECT_EQ(L::CallerBase, 5u);
  EXPECT_EQ(L::CallerBase + L::NumCaller, L::CalleeBase);
  EXPECT_EQ(L::CalleeBase + L::NumCallee, L::ScratchBase);
  EXPECT_LE(L::ScratchBase + L::NumScratch, L::FileSize);
  // 24 allocatable registers per file, as documented.
  EXPECT_EQ(L::NumCaller + L::NumCallee, 24u);
}

} // namespace
