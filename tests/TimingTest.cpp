//===- tests/TimingTest.cpp - Caches, predictors, cycle simulator ---------===//

#include "core/Pipeline.h"
#include "sir/Parser.h"
#include "timing/BranchPredictor.h"
#include "timing/Cache.h"
#include "timing/MachineConfig.h"
#include "timing/Simulator.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::timing;
using namespace fpint::core;

namespace {

//===----------------------------------------------------------------------===//
// Cache model
//===----------------------------------------------------------------------===//

TEST(Cache, HitsAfterFill) {
  CacheConfig Cfg{1024, 2, 32, 1, 6};
  Cache C(Cfg);
  EXPECT_EQ(C.access(0x100), 7u); // Compulsory miss.
  EXPECT_EQ(C.access(0x104), 1u); // Same line.
  EXPECT_EQ(C.access(0x11F), 1u);
  EXPECT_EQ(C.access(0x120), 7u); // Next line.
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.accesses(), 4u);
}

TEST(Cache, LruEviction) {
  // 2-way, 2 sets of 32B lines: lines mapping to set 0 are multiples of
  // 64. Three distinct such lines thrash a 2-way set.
  CacheConfig Cfg{128, 2, 32, 1, 6};
  Cache C(Cfg);
  C.access(0);   // miss
  C.access(64);  // miss
  EXPECT_EQ(C.access(0), 1u);   // hit (LRU now 64)
  C.access(128);                // miss, evicts 64
  EXPECT_EQ(C.access(0), 1u);   // still resident
  EXPECT_EQ(C.access(64), 7u);  // was evicted
}

TEST(Cache, WritebackCounting) {
  CacheConfig Cfg{128, 2, 32, 1, 6};
  Cache C(Cfg);
  C.access(0, true); // Dirty line.
  C.access(64);
  C.access(128);              // Evicts LRU = line 0 (dirty).
  EXPECT_EQ(C.writebacks(), 1u);
}

TEST(Cache, ProbeDoesNotMutate) {
  CacheConfig Cfg{128, 2, 32, 1, 6};
  Cache C(Cfg);
  EXPECT_FALSE(C.probe(0));
  C.access(0);
  EXPECT_TRUE(C.probe(0));
  EXPECT_EQ(C.accesses(), 1u);
}

//===----------------------------------------------------------------------===//
// Branch predictors
//===----------------------------------------------------------------------===//

TEST(BranchPredictor, GshareLearnsLoopPattern) {
  GsharePredictor P;
  // A loop branch: taken 15 times, not-taken once, repeated.
  unsigned Correct = 0, Total = 0;
  for (int Rep = 0; Rep < 40; ++Rep)
    for (int I = 0; I < 16; ++I) {
      bool Taken = I != 15;
      Correct += P.predictAndUpdate(0x4000, Taken);
      ++Total;
    }
  // After warmup, gshare's history disambiguates the exit iteration.
  EXPECT_GT(static_cast<double>(Correct) / Total, 0.95);
}

TEST(BranchPredictor, GshareBeatsStaticOnAlternating) {
  GsharePredictor G;
  StaticNotTakenPredictor S;
  unsigned GCorrect = 0, SCorrect = 0;
  for (int I = 0; I < 2000; ++I) {
    bool Taken = (I % 2) == 0;
    GCorrect += G.predictAndUpdate(0x1234, Taken);
    SCorrect += S.predictAndUpdate(0x1234, Taken);
  }
  EXPECT_GT(GCorrect, SCorrect);
  EXPECT_GT(G.accuracy(), 0.95);
}

TEST(BranchPredictor, McFarlingAtLeastMatchesComponentsOnMixed) {
  McFarlingPredictor M;
  unsigned Correct = 0, Total = 0;
  // Two branches: one strongly biased, one history-correlated.
  bool Last = false;
  for (int I = 0; I < 4000; ++I) {
    Correct += M.predictAndUpdate(0x100, true); // Always taken.
    ++Total;
    bool T = !Last;
    Correct += M.predictAndUpdate(0x200, T);
    Last = T;
    ++Total;
  }
  EXPECT_GT(static_cast<double>(Correct) / Total, 0.95);
}

TEST(BranchPredictor, TwoBitCounterSaturates) {
  uint8_t C = 0;
  C = counterUpdate(C, true);
  C = counterUpdate(C, true);
  C = counterUpdate(C, true);
  C = counterUpdate(C, true);
  EXPECT_EQ(C, 3);
  EXPECT_TRUE(counterPredict(C));
  C = counterUpdate(C, false);
  EXPECT_TRUE(counterPredict(C)); // Hysteresis.
  C = counterUpdate(C, false);
  EXPECT_FALSE(counterPredict(C));
}

//===----------------------------------------------------------------------===//
// Simulator behavior
//===----------------------------------------------------------------------===//

PipelineRun compileSrc(const char *Src, partition::Scheme S) {
  sir::ParseResult PR = sir::parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error;
  PipelineConfig Cfg;
  Cfg.Scheme = S;
  // These kernels probe the simulator with hand-shaped dependence
  // patterns; the optimizer would constant-fold them away.
  Cfg.RunOptimizations = false;
  PipelineRun Run = compileAndMeasure(*PR.M, Cfg);
  EXPECT_TRUE(Run.ok()) << (Run.Errors.empty() ? "?" : Run.Errors[0]);
  return Run;
}

TEST(Simulator, IndependentOpsReachIssueWidth) {
  // Long stretches of independent 1-cycle integer ops: IPC should
  // approach the 2-unit INT issue limit on the 4-way machine.
  std::string Src = "func main() {\nentry:\n  li %a, 1\n  li %b, 2\n";
  for (int I = 0; I < 400; ++I)
    Src += "  add %x" + std::to_string(I) + ", %a, %b\n";
  Src += "  out %a\n  ret\n}\n";
  PipelineRun Run = compileSrc(Src.c_str(), partition::Scheme::None);
  SimStats St = simulate(Run, MachineConfig::fourWay());
  EXPECT_GT(St.ipc(), 1.6);
  EXPECT_LE(St.ipc(), 2.3);
}

TEST(Simulator, DependentChainSerializes) {
  std::string Src = "func main() {\nentry:\n  li %a, 1\n";
  for (int I = 0; I < 400; ++I)
    Src += "  addi %a, %a, 1\n";
  Src += "  out %a\n  ret\n}\n";
  PipelineRun Run = compileSrc(Src.c_str(), partition::Scheme::None);
  SimStats St = simulate(Run, MachineConfig::fourWay());
  EXPECT_LT(St.ipc(), 1.2);
  EXPECT_GT(St.ipc(), 0.8);
}

TEST(Simulator, MultipliesAreSlowerThanAdds) {
  auto Build = [](const char *Op) {
    std::string Src = "func main() {\nentry:\n  li %a, 3\n";
    for (int I = 0; I < 300; ++I)
      Src += std::string("  ") + Op + " %a, %a, %a\n";
    Src += "  out %a\n  ret\n}\n";
    return Src;
  };
  PipelineRun AddRun = compileSrc(Build("add").c_str(),
                                  partition::Scheme::None);
  PipelineRun MulRun = compileSrc(Build("mul").c_str(),
                                  partition::Scheme::None);
  SimStats AddStats = simulate(AddRun, MachineConfig::fourWay());
  SimStats MulStats = simulate(MulRun, MachineConfig::fourWay());
  // A dependent multiply chain pays ~6 cycles per op.
  EXPECT_GT(MulStats.Cycles, AddStats.Cycles * 4);
}

TEST(Simulator, MispredictionsCostCycles) {
  // Data-dependent branme on pseudo-random bits vs. an always-taken
  // pattern of the same instruction count.
  const char *Random = R"(
func main() {
entry:
  li %seed, 987
  li %i, 0
  li %acc, 0
loop:
  sll %a, %seed, 13
  xor %b, %seed, %a
  srl %c, %b, 17
  xor %d, %b, %c
  sll %e, %d, 5
  xor %seed, %d, %e
  andi %bit, %seed, 1
  beq %bit, %zero, skip
  addi %acc, %acc, 1
skip:
  addi %i, %i, 1
  slti %t, %i, 3000
  bne %t, %zero, loop
  out %acc
  ret
}
)";
  const char *Biased = R"(
func main() {
entry:
  li %seed, 987
  li %i, 0
  li %acc, 0
loop:
  sll %a, %seed, 13
  xor %b, %seed, %a
  srl %c, %b, 17
  xor %d, %b, %c
  sll %e, %d, 5
  xor %seed, %d, %e
  andi %bit, %seed, 0
  beq %bit, %zero, skip
  addi %acc, %acc, 1
skip:
  addi %i, %i, 1
  slti %t, %i, 3000
  bne %t, %zero, loop
  out %acc
  ret
}
)";
  PipelineRun RandomRun = compileSrc(Random, partition::Scheme::None);
  PipelineRun BiasedRun = compileSrc(Biased, partition::Scheme::None);
  SimStats RandomStats = simulate(RandomRun, MachineConfig::fourWay());
  SimStats BiasedStats = simulate(BiasedRun, MachineConfig::fourWay());
  EXPECT_GT(RandomStats.Mispredicts, BiasedStats.Mispredicts * 5);
  EXPECT_GT(RandomStats.Cycles, BiasedStats.Cycles);
  EXPECT_LT(BiasedStats.branchAccuracy(), 1.01);
  EXPECT_GT(BiasedStats.branchAccuracy(), 0.98);
}

TEST(Simulator, CacheMissesCostCycles) {
  // A pointer chase keeps the load on the critical path. The cold ring
  // spans 64KB (> 32KB D-cache, new 32B line each hop); the hot ring
  // fits in a few lines.
  auto Build = [](int RingEntries) {
    std::string Src = "global ring 16384\nfunc main() {\nentry:\n"
                      "  la %base, ring\n  li %i, 0\n";
    // ring[j*16] = byte offset of the next entry (64B stride).
    Src += "init:\n  sll %off, %i, 6\n  add %ea, %base, %off\n"
           "  addi %i1, %i, 1\n";
    Src += "  andi %iw, %i1, " + std::to_string(RingEntries - 1) + "\n";
    Src += "  sll %noff, %iw, 6\n  sw %noff, 0(%ea)\n  move %i, %i1\n";
    Src += "  slti %t, %i, " + std::to_string(RingEntries) + "\n";
    Src += "  bne %t, %zero, init\n";
    Src += "  li %cur, 0\n  li %n, 0\nchase:\n"
           "  add %p, %base, %cur\n  lw %cur, 0(%p)\n"
           "  addi %n, %n, 1\n  slti %c, %n, 2000\n  bne %c, %zero, chase\n"
           "  out %cur\n  ret\n}\n";
    return Src;
  };
  PipelineRun HotRun = compileSrc(Build(4).c_str(), partition::Scheme::None);
  PipelineRun ColdRun =
      compileSrc(Build(1024).c_str(), partition::Scheme::None);
  SimStats Hot = simulate(HotRun, MachineConfig::fourWay());
  SimStats Cold = simulate(ColdRun, MachineConfig::fourWay());
  EXPECT_GT(Cold.DCacheMisses, Hot.DCacheMisses + 1000);
  EXPECT_GT(Cold.Cycles, Hot.Cycles + 5000);
}

TEST(Simulator, StoreForwardingHappens) {
  const char *Src = R"(
global slot 1

func main() {
entry:
  li %i, 0
loop:
  sw %i, slot
  lw %v, slot
  addi %i, %v, 1
  slti %t, %i, 500
  bne %t, %zero, loop
  out %i
  ret
}
)";
  PipelineRun Run = compileSrc(Src, partition::Scheme::None);
  SimStats St = simulate(Run, MachineConfig::fourWay());
  EXPECT_GT(St.StoreForwards, 100u);
}

TEST(Simulator, EightWayNotSlowerThanFourWay) {
  PipelineRun Run =
      compileSrc(fixtures::InvalidateForCall, partition::Scheme::None);
  SimStats Four = simulate(Run, MachineConfig::fourWay());
  SimStats Eight = simulate(Run, MachineConfig::eightWay());
  EXPECT_LE(Eight.Cycles, Four.Cycles);
  EXPECT_EQ(Eight.Instructions, Four.Instructions);
}

TEST(Simulator, InstructionCountMatchesTrace) {
  PipelineRun Run =
      compileSrc(fixtures::IntVectorSum, partition::Scheme::None);
  vm::VM::Options Opts;
  Opts.CollectTrace = true;
  vm::VM Machine(*Run.Compiled, Opts);
  auto R = Machine.run();
  ASSERT_TRUE(R.Ok);
  Simulator Sim(MachineConfig::fourWay(), Run.Alloc);
  SimStats St = Sim.run(Machine.trace());
  EXPECT_EQ(St.Instructions, Machine.trace().size());
  EXPECT_GT(St.Cycles, 0u);
}

//===----------------------------------------------------------------------===//
// The headline effect: offloading speeds up integer code.
//===----------------------------------------------------------------------===//

TEST(Simulator, PartitionedCodeUsesTheFpSubsystem) {
  PipelineRun Conv =
      compileSrc(fixtures::InvalidateForCall, partition::Scheme::None);
  PipelineRun Adv =
      compileSrc(fixtures::InvalidateForCall, partition::Scheme::Advanced);
  SimStats ConvStats = simulate(Conv, MachineConfig::fourWay());
  SimStats AdvStats = simulate(Adv, MachineConfig::fourWay());

  EXPECT_EQ(ConvStats.FpIssued, 0u);
  EXPECT_GT(AdvStats.FpIssued, 0u);
}

TEST(Simulator, OffloadingImprovesIntBoundKernel) {
  // A kernel with more integer ILP than 2 INT units can absorb, split
  // between an address-bound chain and an offloadable value chain.
  const char *Src = R"(
global src 256
global dst 256

func main(%n) {
entry:
  li %i, 0
  la %ps, src
  la %pd, dst
loop:
  andi %ix, %i, 255
  sll %off, %ix, 2
  add %ea, %ps, %off
  lw %v, 0(%ea)
  xor %h1, %v, %i
  sll %h2, %h1, 3
  add %h3, %h2, %h1
  srl %h4, %h3, 5
  xor %h5, %h4, %h3
  andi %h6, %h5, 8191
  add %eb, %pd, %off
  sw %h6, 0(%eb)
  addi %i, %i, 1
  slt %t, %i, %n
  bne %t, %zero, loop
  la %pz, dst
  lw %r, 40(%pz)
  out %r
  ret
}
)";
  sir::ParseResult PR = sir::parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  PipelineConfig ConvCfg;
  ConvCfg.Scheme = partition::Scheme::None;
  ConvCfg.TrainArgs = {400};
  ConvCfg.RefArgs = {2000};
  PipelineRun Conv = compileAndMeasure(*PR.M, ConvCfg);
  ASSERT_TRUE(Conv.ok()) << (Conv.Errors.empty() ? "?" : Conv.Errors[0]);

  PipelineConfig AdvCfg = ConvCfg;
  AdvCfg.Scheme = partition::Scheme::Advanced;
  PipelineRun Adv = compileAndMeasure(*PR.M, AdvCfg);
  ASSERT_TRUE(Adv.ok()) << (Adv.Errors.empty() ? "?" : Adv.Errors[0]);
  EXPECT_GT(Adv.Stats.fpaFraction(), 0.15);

  SimStats ConvStats = simulate(Conv, MachineConfig::fourWay());
  SimStats AdvStats = simulate(Adv, MachineConfig::fourWay());
  double Speedup = core::speedup(ConvStats, AdvStats);
  EXPECT_GT(Speedup, 1.0) << "offloading should win on this kernel; "
                          << "conv=" << ConvStats.Cycles
                          << " adv=" << AdvStats.Cycles;
}

TEST(Simulator, ConventionalMachineRejectsPartitionedBinary) {
  PipelineRun Adv =
      compileSrc(fixtures::InvalidateForCall, partition::Scheme::Advanced);
  MachineConfig Conv = MachineConfig::fourWay();
  Conv.FpaEnabled = false;
  EXPECT_DEATH(simulate(Adv, Conv), "conventional");
}

} // namespace
