//===- tests/CorpusTest.cpp - Replay the on-disk corpus through the oracle ===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays every tests/corpus/**/*.sir program through the differential
/// oracle: each must produce identical output, exit value, and global
/// memory under every pipeline variant, and the timing simulator must
/// agree with the stats subsystem on dynamic counts. The corpus holds
/// the paper's running examples plus reducer-minimized regressions from
/// fpint-fuzz, so a pipeline change that re-breaks an old bug fails here
/// without re-fuzzing.
///
//===----------------------------------------------------------------------===//

#include "sir/Parser.h"
#include "testgen/Oracle.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

using namespace fpint;
namespace fs = std::filesystem;

namespace {

fs::path corpusDir() { return fs::path(FPINT_SOURCE_DIR) / "tests" / "corpus"; }

std::vector<fs::path> corpusFiles() {
  std::vector<fs::path> Files;
  for (const fs::directory_entry &E : fs::recursive_directory_iterator(corpusDir()))
    if (E.is_regular_file() && E.path().extension() == ".sir")
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string slurp(const fs::path &P) {
  std::ifstream In(P);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

TEST(CorpusTest, CorpusIsSeeded) {
  // The corpus must at least contain the three paper examples; an empty
  // glob would make the replay test pass vacuously.
  EXPECT_GE(corpusFiles().size(), 3u) << "corpus dir: " << corpusDir();
}

TEST(CorpusTest, EveryProgramParses) {
  for (const fs::path &P : corpusFiles()) {
    sir::ParseResult PR = sir::parseModule(slurp(P));
    EXPECT_TRUE(PR.ok()) << P.filename() << ": " << PR.Error;
  }
}

TEST(CorpusTest, OracleAcceptsEveryProgram) {
  for (const fs::path &P : corpusFiles()) {
    SCOPED_TRACE(P.filename().string());
    sir::ParseResult PR = sir::parseModule(slurp(P));
    ASSERT_TRUE(PR.ok()) << PR.Error;

    testgen::OracleReport Report = testgen::runOracle(*PR.M);
    EXPECT_FALSE(Report.BaselineSkipped)
        << "corpus programs must terminate quickly: " << Report.BaselineError;
    for (const std::string &Msg : Report.Mismatches)
      ADD_FAILURE() << Msg;
    EXPECT_GT(Report.BaselineDynInstrs, 0u);
  }
}

namespace {

std::vector<fs::path> transformCorpusFiles() {
  std::vector<fs::path> Files;
  for (const fs::path &P : corpusFiles())
    if (P.parent_path().filename() == "transform")
      Files.push_back(P);
  return Files;
}

} // namespace

TEST(CorpusTest, TransformCorpusIsSeeded) {
  EXPECT_GE(transformCorpusFiles().size(), 4u) << "corpus dir: " << corpusDir();
}

TEST(CorpusTest, OracleAcceptsTransformCorpusUnderMidendVariants) {
  // The mid-end fixtures replay through the oracle under every new
  // pipeline variant (each transform pass alone plus opt2), on top of
  // the default battery.
  testgen::OracleOptions Opts;
  std::vector<testgen::VariantSpec> MV = testgen::midendVariants();
  Opts.Variants.insert(Opts.Variants.end(), MV.begin(), MV.end());
  for (const fs::path &P : transformCorpusFiles()) {
    SCOPED_TRACE(P.filename().string());
    sir::ParseResult PR = sir::parseModule(slurp(P));
    ASSERT_TRUE(PR.ok()) << PR.Error;
    testgen::OracleReport Report = testgen::runOracle(*PR.M, Opts);
    EXPECT_FALSE(Report.BaselineSkipped) << Report.BaselineError;
    for (const std::string &Msg : Report.Mismatches)
      ADD_FAILURE() << Msg;
  }
}

TEST(CorpusTest, TransformCorpusShowsMidendDeltas) {
  // Every mid-end fixture was built so that at least one transform pass
  // changes its fig8-style dynamic partition stats; if none does, the
  // fixture has rotted into a no-op and stops guarding anything.
  for (const fs::path &P : transformCorpusFiles()) {
    SCOPED_TRACE(P.filename().string());
    sir::ParseResult PR = sir::parseModule(slurp(P));
    ASSERT_TRUE(PR.ok()) << PR.Error;

    core::PipelineConfig Base;
    Base.Scheme = partition::Scheme::Advanced;
    Base.EnableFpArgPassing = true;
    core::PipelineRun Default = core::compileAndMeasure(*PR.M, Base);
    ASSERT_TRUE(Default.ok()) << (Default.Errors.empty()
                                      ? "output mismatch"
                                      : Default.Errors.front());

    bool AnyDelta = false;
    for (const testgen::VariantSpec &V : testgen::midendVariants()) {
      core::PipelineConfig Cfg = V.Config;
      core::PipelineRun Run = core::compileAndMeasure(*PR.M, Cfg);
      ASSERT_TRUE(Run.ok()) << V.Name << ": "
                            << (Run.Errors.empty() ? "output mismatch"
                                                   : Run.Errors.front());
      if (Run.Stats.Total != Default.Stats.Total ||
          Run.Stats.Fpa != Default.Stats.Fpa)
        AnyDelta = true;
    }
    EXPECT_TRUE(AnyDelta)
        << "no mid-end variant changed the partition stats";
  }
}
