//===- tests/CorpusTest.cpp - Replay the on-disk corpus through the oracle ===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays every tests/corpus/**/*.sir program through the differential
/// oracle: each must produce identical output, exit value, and global
/// memory under every pipeline variant, and the timing simulator must
/// agree with the stats subsystem on dynamic counts. The corpus holds
/// the paper's running examples plus reducer-minimized regressions from
/// fpint-fuzz, so a pipeline change that re-breaks an old bug fails here
/// without re-fuzzing.
///
//===----------------------------------------------------------------------===//

#include "sir/Parser.h"
#include "testgen/Oracle.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

using namespace fpint;
namespace fs = std::filesystem;

namespace {

fs::path corpusDir() { return fs::path(FPINT_SOURCE_DIR) / "tests" / "corpus"; }

std::vector<fs::path> corpusFiles() {
  std::vector<fs::path> Files;
  for (const fs::directory_entry &E : fs::recursive_directory_iterator(corpusDir()))
    if (E.is_regular_file() && E.path().extension() == ".sir")
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string slurp(const fs::path &P) {
  std::ifstream In(P);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

TEST(CorpusTest, CorpusIsSeeded) {
  // The corpus must at least contain the three paper examples; an empty
  // glob would make the replay test pass vacuously.
  EXPECT_GE(corpusFiles().size(), 3u) << "corpus dir: " << corpusDir();
}

TEST(CorpusTest, EveryProgramParses) {
  for (const fs::path &P : corpusFiles()) {
    sir::ParseResult PR = sir::parseModule(slurp(P));
    EXPECT_TRUE(PR.ok()) << P.filename() << ": " << PR.Error;
  }
}

TEST(CorpusTest, OracleAcceptsEveryProgram) {
  for (const fs::path &P : corpusFiles()) {
    SCOPED_TRACE(P.filename().string());
    sir::ParseResult PR = sir::parseModule(slurp(P));
    ASSERT_TRUE(PR.ok()) << PR.Error;

    testgen::OracleReport Report = testgen::runOracle(*PR.M);
    EXPECT_FALSE(Report.BaselineSkipped)
        << "corpus programs must terminate quickly: " << Report.BaselineError;
    for (const std::string &Msg : Report.Mismatches)
      ADD_FAILURE() << Msg;
    EXPECT_GT(Report.BaselineDynInstrs, 0u);
  }
}
