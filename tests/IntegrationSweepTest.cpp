//===- tests/IntegrationSweepTest.cpp - Cross-cutting sweeps --------------===//

#include "core/Pipeline.h"
#include "regalloc/RegAlloc.h"
#include "sir/Parser.h"
#include "timing/Simulator.h"
#include "sir/Printer.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::core;

namespace {

/// Every operand of every compiled workload maps to a valid
/// architectural register, and the three schemes agree on outputs.
TEST(IntegrationSweep, ArchMappingIsTotalAcrossSuite) {
  for (const std::string &Name : workloads::allWorkloadNames()) {
    workloads::Workload W = workloads::workloadByName(Name);
    PipelineConfig Cfg;
    Cfg.Scheme = partition::Scheme::Advanced;
    Cfg.TrainArgs = W.TrainArgs;
    Cfg.RefArgs = W.RefArgs;
    PipelineRun Run = compileAndMeasure(*W.M, Cfg);
    ASSERT_TRUE(Run.ok()) << Name;
    for (const auto &F : Run.Compiled->functions()) {
      F->forEachInstr([&](const sir::Instruction &I) {
        if (I.def().isValid()) {
          EXPECT_LT(Run.Alloc.archIndexOf(F.get(), I.def()),
                    regalloc::ArchLayout::FileSize)
              << Name << "/" << F->name();
        }
        I.forEachUse([&](sir::Reg R, sir::UseKind) {
          EXPECT_LT(Run.Alloc.archIndexOf(F.get(), R),
                    regalloc::ArchLayout::FileSize)
              << Name << "/" << F->name();
        });
      });
    }
  }
}

/// Simulated instruction counts equal functional dynamic counts for
/// every workload and scheme: the simulator loses or invents nothing.
TEST(IntegrationSweep, SimulatorConservesInstructions) {
  timing::MachineConfig Machine = timing::MachineConfig::fourWay();
  for (const std::string &Name : workloads::allWorkloadNames()) {
    workloads::Workload W = workloads::workloadByName(Name);
    for (int S = 0; S < 3; ++S) {
      PipelineConfig Cfg;
      Cfg.Scheme = static_cast<partition::Scheme>(S);
      Cfg.TrainArgs = W.TrainArgs;
      Cfg.RefArgs = W.RefArgs;
      PipelineRun Run = compileAndMeasure(*W.M, Cfg);
      ASSERT_TRUE(Run.ok()) << Name;
      timing::MachineConfig M = Machine;
      M.FpaEnabled = Cfg.Scheme != partition::Scheme::None;
      timing::SimStats Stats = simulate(Run, M);
      EXPECT_EQ(Stats.Instructions, Run.RefResult.Steps)
          << Name << "/" << partition::schemeName(Cfg.Scheme);
      EXPECT_EQ(Stats.IntIssued + Stats.FpIssued, Stats.Instructions)
          << Name;
    }
  }
}

/// The load-balance cap flows through the pipeline and reduces offload
/// monotonically.
TEST(IntegrationSweep, LoadBalanceCapMonotone) {
  workloads::Workload W = workloads::workloadByName("compress");
  double Prev = 1.0;
  for (double Cap : {1.0, 0.5, 0.3, 0.1}) {
    PipelineConfig Cfg;
    Cfg.Scheme = partition::Scheme::Advanced;
    Cfg.Costs.FpaShareCap = Cap;
    Cfg.TrainArgs = W.TrainArgs;
    Cfg.RefArgs = W.RefArgs;
    PipelineRun Run = compileAndMeasure(*W.M, Cfg);
    ASSERT_TRUE(Run.ok()) << "cap " << Cap;
    EXPECT_LE(Run.Stats.fpaFraction(), Prev + 1e-9) << "cap " << Cap;
    Prev = Run.Stats.fpaFraction();
  }
}

/// Instruction-cache capacity: a loop over >64KB of code misses every
/// iteration; a small loop stays resident.
TEST(IntegrationSweep, ICacheCapacityMisses) {
  auto Build = [](unsigned BodyOps) {
    std::string Src = "func main() {\nentry:\n  li %a, 1\n  li %i, 0\n"
                      "loop:\n";
    for (unsigned I = 0; I < BodyOps; ++I)
      Src += "  addi %a, %a, 1\n";
    Src += "  addi %i, %i, 1\n  slti %t, %i, 6\n  bne %t, %zero, loop\n"
           "  out %a\n  ret\n}\n";
    return Src;
  };
  auto Compile = [](const std::string &Src) {
    sir::ParseResult PR = sir::parseModule(Src);
    EXPECT_TRUE(PR.ok()) << PR.Error;
    PipelineConfig Cfg;
    Cfg.Scheme = partition::Scheme::None;
    Cfg.RunOptimizations = false; // Keep the giant body intact.
    PipelineRun Run = compileAndMeasure(*PR.M, Cfg);
    EXPECT_TRUE(Run.ok());
    return Run;
  };
  timing::MachineConfig M = timing::MachineConfig::fourWay();
  M.FpaEnabled = false;

  PipelineRun Small = Compile(Build(64));
  // 20000 instructions * 4B = 80KB of code > 64KB I-cache.
  PipelineRun Huge = Compile(Build(20000));
  timing::SimStats SS = simulate(Small, M);
  timing::SimStats SH = simulate(Huge, M);

  // The small loop warms up once (a handful of compulsory misses).
  EXPECT_LT(SS.ICacheMisses, 20u);
  // The huge loop thrashes: misses on every iteration, well beyond its
  // compulsory set (80KB / 128B lines = 625 compulsory misses).
  EXPECT_GT(SH.ICacheMisses, 2000u);
}

/// Cross-scheme determinism: compiling the same workload twice yields
/// byte-identical code and identical measurements.
TEST(IntegrationSweep, CompilationIsDeterministic) {
  for (const char *Name : {"gcc", "perl"}) {
    workloads::Workload W1 = workloads::workloadByName(Name);
    workloads::Workload W2 = workloads::workloadByName(Name);
    PipelineConfig Cfg;
    Cfg.Scheme = partition::Scheme::Advanced;
    Cfg.TrainArgs = W1.TrainArgs;
    Cfg.RefArgs = W1.RefArgs;
    PipelineRun R1 = compileAndMeasure(*W1.M, Cfg);
    PipelineRun R2 = compileAndMeasure(*W2.M, Cfg);
    ASSERT_TRUE(R1.ok() && R2.ok()) << Name;
    EXPECT_EQ(sir::toString(*R1.Compiled), sir::toString(*R2.Compiled))
        << Name;
    EXPECT_EQ(R1.Stats.Total, R2.Stats.Total);
    EXPECT_EQ(R1.Stats.Fpa, R2.Stats.Fpa);
  }
}

} // namespace
