//===- tests/SimulatorTest.cpp - Fast-path simulator equivalence ----------===//
//
// The fast cycle loop (packed SoA trace, dense in-flight ring,
// event-driven cycle skipping) must be bit-identical to the reference
// loop: same SimStats, same telemetry breakdown, on every fixture and
// machine. These tests pin that contract, the PackedTrace round-trip,
// the typed SimulationOverrun condition, and sampled-mode determinism.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "sir/Parser.h"
#include "timing/MachineConfig.h"
#include "timing/PackedTrace.h"
#include "timing/Simulator.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::timing;
using namespace fpint::core;

namespace {

PipelineRun compileSrc(const char *Src, partition::Scheme S) {
  sir::ParseResult PR = sir::parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error;
  PipelineConfig Cfg;
  Cfg.Scheme = S;
  Cfg.RunOptimizations = false;
  PipelineRun Run = compileAndMeasure(*PR.M, Cfg);
  EXPECT_TRUE(Run.ok()) << (Run.Errors.empty() ? "?" : Run.Errors[0]);
  return Run;
}

/// Runs \p Run on \p M with the given path selection, full simulation,
/// no environment influence.
SimStats runPath(const PipelineRun &Run, const MachineConfig &M, bool Fast,
                 stats::EventSink *Sink = nullptr) {
  Simulator Sim(M, Run.Alloc);
  Sim.setFastPath(Fast);
  Sim.setSampling({});
  Sim.setEventSink(Sink);
  return Sim.run(Run.refTrace());
}

/// Every deterministic SimStats field (wall time and telemetry
/// pointers excluded, by design).
void expectStatsEqual(const SimStats &Ref, const SimStats &Fast,
                      const std::string &Label) {
  EXPECT_EQ(Ref.Cycles, Fast.Cycles) << Label;
  EXPECT_EQ(Ref.Instructions, Fast.Instructions) << Label;
  EXPECT_EQ(Ref.IntIssued, Fast.IntIssued) << Label;
  EXPECT_EQ(Ref.FpIssued, Fast.FpIssued) << Label;
  EXPECT_EQ(Ref.CondBranches, Fast.CondBranches) << Label;
  EXPECT_EQ(Ref.Mispredicts, Fast.Mispredicts) << Label;
  EXPECT_EQ(Ref.Loads, Fast.Loads) << Label;
  EXPECT_EQ(Ref.Stores, Fast.Stores) << Label;
  EXPECT_EQ(Ref.DCacheMisses, Fast.DCacheMisses) << Label;
  EXPECT_EQ(Ref.ICacheMisses, Fast.ICacheMisses) << Label;
  EXPECT_EQ(Ref.StoreForwards, Fast.StoreForwards) << Label;
  EXPECT_EQ(Ref.FpBusyCycles, Fast.FpBusyCycles) << Label;
  EXPECT_EQ(Ref.IntIdleFpBusyCycles, Fast.IntIdleFpBusyCycles) << Label;
  EXPECT_EQ(Ref.Sampled, Fast.Sampled) << Label;
}

void expectBreakdownsEqual(const stats::StallBreakdown &Ref,
                           const stats::StallBreakdown &Fast,
                           const std::string &Label) {
  EXPECT_EQ(Ref.Cycles, Fast.Cycles) << Label;
  EXPECT_EQ(Ref.NonIssuingCycles, Fast.NonIssuingCycles) << Label;
  for (unsigned R = 0; R < stats::NumStallReasons; ++R)
    EXPECT_EQ(Ref.StallCycles[R], Fast.StallCycles[R])
        << Label << " reason "
        << stats::stallReasonName(static_cast<stats::StallReason>(R));
  EXPECT_EQ(Ref.IntIssueHist, Fast.IntIssueHist) << Label;
  EXPECT_EQ(Ref.FpIssueHist, Fast.FpIssueHist) << Label;
  EXPECT_EQ(Ref.IntWindowFullCycles, Fast.IntWindowFullCycles) << Label;
  EXPECT_EQ(Ref.FpWindowFullCycles, Fast.FpWindowFullCycles) << Label;
  EXPECT_EQ(Ref.IntWindowOccupancySum, Fast.IntWindowOccupancySum) << Label;
  EXPECT_EQ(Ref.FpWindowOccupancySum, Fast.FpWindowOccupancySum) << Label;
}

//===----------------------------------------------------------------------===//
// (a) Fast path == reference path across fixtures x machines.
//===----------------------------------------------------------------------===//

TEST(FastPath, MatchesReferenceAcrossFixturesAndMachines) {
  const struct {
    const char *Name;
    const char *Src;
  } Fixtures[] = {
      {"IntVectorSum", fixtures::IntVectorSum},
      {"InvalidateForCall", fixtures::InvalidateForCall},
      {"MemoryFreeRand", fixtures::MemoryFreeRand},
  };
  const partition::Scheme Schemes[] = {partition::Scheme::None,
                                       partition::Scheme::Advanced};
  const MachineConfig Machines[] = {MachineConfig::fourWay(),
                                    MachineConfig::eightWay()};
  for (const auto &Fx : Fixtures)
    for (partition::Scheme S : Schemes) {
      PipelineRun Run = compileSrc(Fx.Src, S);
      for (const MachineConfig &M : Machines) {
        std::string Label = std::string(Fx.Name) + "/" +
                            partition::schemeName(S) + "/" + M.Name;
        SimStats Ref = runPath(Run, M, /*Fast=*/false);
        SimStats Fast = runPath(Run, M, /*Fast=*/true);
        expectStatsEqual(Ref, Fast, Label);
        // The packed overload must agree with the entry-vector one.
        Simulator Sim(M, Run.Alloc);
        Sim.setFastPath(true);
        Sim.setSampling({});
        expectStatsEqual(Ref, Sim.run(Run.packedTrace()), Label + "/packed");
      }
    }
}

//===----------------------------------------------------------------------===//
// (b) Telemetry with cycle skipping: the stall partition holds and the
// whole breakdown is bit-identical to the per-cycle reference feed.
//===----------------------------------------------------------------------===//

TEST(FastPath, TelemetryIdenticalWithCycleSkipping) {
  // The multiply chain stalls for long spans (6-cycle dependent ops),
  // so the fast path exercises bulk-emitted skipped cycles heavily.
  std::string Mul = "func main() {\nentry:\n  li %a, 3\n";
  for (int I = 0; I < 200; ++I)
    Mul += "  mul %a, %a, %a\n";
  Mul += "  out %a\n  ret\n}\n";

  const struct {
    const char *Name;
    std::string Src;
    partition::Scheme Scheme;
  } Cases[] = {
      {"mulchain", Mul, partition::Scheme::None},
      {"invalidate", fixtures::InvalidateForCall, partition::Scheme::Advanced},
      {"rand", fixtures::MemoryFreeRand, partition::Scheme::Advanced},
  };
  for (const auto &C : Cases) {
    PipelineRun Run = compileSrc(C.Src.c_str(), C.Scheme);
    for (const MachineConfig &M :
         {MachineConfig::fourWay(), MachineConfig::eightWay()}) {
      stats::StallBreakdown Ref, Fast;
      SimStats RS = runPath(Run, M, /*Fast=*/false, &Ref);
      SimStats FS = runPath(Run, M, /*Fast=*/true, &Fast);
      std::string Label = std::string(C.Name) + "/" + M.Name;
      expectStatsEqual(RS, FS, Label);
      EXPECT_TRUE(Fast.partitionHolds()) << Label;
      EXPECT_EQ(Fast.Cycles, FS.Cycles) << Label;
      expectBreakdownsEqual(Ref, Fast, Label);
    }
  }
}

//===----------------------------------------------------------------------===//
// (c) PackedTrace round-trips every TraceEntry field.
//===----------------------------------------------------------------------===//

TEST(PackedTraceTest, RoundTripsEveryEntryField) {
  for (const char *Src :
       {fixtures::IntVectorSum, fixtures::InvalidateForCall,
        fixtures::MemoryFreeRand}) {
    PipelineRun Run = compileSrc(Src, partition::Scheme::Advanced);
    const std::vector<vm::TraceEntry> &Trace = Run.refTrace();
    PackedTrace PT = PackedTrace::build(Trace, Run.Alloc);
    ASSERT_EQ(PT.size(), Trace.size());
    for (size_t I = 0; I < Trace.size(); ++I) {
      vm::TraceEntry E = PT.entry(I);
      ASSERT_EQ(E.I, Trace[I].I) << "entry " << I;
      ASSERT_EQ(E.Pc, Trace[I].Pc) << "entry " << I;
      ASSERT_EQ(E.MemAddr, Trace[I].MemAddr) << "entry " << I;
      ASSERT_EQ(E.Taken, Trace[I].Taken) << "entry " << I;
    }
    // The bulk reconstruction agrees with the per-entry one.
    std::vector<vm::TraceEntry> Rebuilt = PT.entries();
    ASSERT_EQ(Rebuilt.size(), Trace.size());
    // And a partitioned trace must carry the FPa marker.
    if (Run.Stats.Fpa > 0) {
      EXPECT_TRUE(PT.HasFpa);
    }
  }
}

TEST(PackedTraceTest, CachedOnTraceHandleAcrossMachines) {
  PipelineRun Run =
      compileSrc(fixtures::IntVectorSum, partition::Scheme::Advanced);
  const PackedTrace &A = Run.packedTrace();
  const PackedTrace &B = Run.packedTrace();
  EXPECT_EQ(&A, &B); // Built once, shared by every machine sweep.
  EXPECT_EQ(A.size(), Run.refTrace().size());
  EXPECT_EQ(Run.Trace->Captures, 1u);
}

//===----------------------------------------------------------------------===//
// (d) Sampled simulation: deterministic for a fixed spec, clearly
// marked, never silently active.
//===----------------------------------------------------------------------===//

TEST(SampledSim, SpecParsing) {
  SampleSpec S;
  EXPECT_TRUE(SampleSpec::parse("100:1000:5000", S));
  EXPECT_EQ(S.Warmup, 100u);
  EXPECT_EQ(S.Window, 1000u);
  EXPECT_EQ(S.Stride, 5000u);
  EXPECT_TRUE(S.enabled());

  EXPECT_TRUE(SampleSpec::parse("0:0:0", S));
  EXPECT_FALSE(S.enabled()); // Window 0 = disabled.

  for (const char *Bad : {"", "1:2", "1:2:3:4", "a:b:c", "1:2:", "-1:2:3",
                          "1: 2:3"}) {
    SampleSpec T;
    EXPECT_FALSE(SampleSpec::parse(Bad, T)) << "'" << Bad << "'";
  }
}

TEST(SampledSim, DeterministicAndMarked) {
  PipelineRun Run =
      compileSrc(fixtures::InvalidateForCall, partition::Scheme::Advanced);
  const MachineConfig M = MachineConfig::fourWay();
  SimStats Full = runPath(Run, M, /*Fast=*/true);

  SampleSpec Spec;
  ASSERT_TRUE(SampleSpec::parse("50:100:400", Spec));
  auto RunSampled = [&] {
    Simulator Sim(M, Run.Alloc);
    Sim.setFastPath(true);
    Sim.setSampling(Spec);
    return Sim.run(Run.refTrace());
  };
  SimStats A = RunSampled();
  SimStats B = RunSampled();

  EXPECT_TRUE(A.Sampled);
  EXPECT_GT(A.SampledInstructions, 0u);
  EXPECT_LT(A.SampledInstructions, A.Instructions);
  EXPECT_EQ(A.Instructions, Full.Instructions); // Trace length is exact.
  EXPECT_FALSE(Full.Sampled);

  // Same spec, same trace -> bit-identical extrapolation.
  expectStatsEqual(A, B, "sampled determinism");
  EXPECT_EQ(A.SampledInstructions, B.SampledInstructions);
  EXPECT_EQ(A.SampledCycles, B.SampledCycles);

  // The extrapolation is in the right ballpark on this steady loop.
  EXPECT_GT(A.Cycles, Full.Cycles / 2);
  EXPECT_LT(A.Cycles, Full.Cycles * 2);

  // A warmup longer than every segment degrades to the exact run.
  SampleSpec Degenerate;
  ASSERT_TRUE(SampleSpec::parse("1000000:10:2000000", Degenerate));
  Simulator Sim(M, Run.Alloc);
  Sim.setFastPath(true);
  Sim.setSampling(Degenerate);
  SimStats D = Sim.run(Run.refTrace());
  EXPECT_FALSE(D.Sampled);
  EXPECT_EQ(D.Cycles, Full.Cycles);
}

//===----------------------------------------------------------------------===//
// SafetyLimit overrun: a typed, reportable condition on both paths.
//===----------------------------------------------------------------------===//

TEST(Overrun, PathologicalConfigThrowsTypedError) {
  PipelineRun Run =
      compileSrc(fixtures::IntVectorSum, partition::Scheme::None);
  MachineConfig Wedged = MachineConfig::fourWay();
  Wedged.IntUnits = 0; // Integer code can never issue: no progress.
  for (bool Fast : {false, true}) {
    Simulator Sim(Wedged, Run.Alloc);
    Sim.setFastPath(Fast);
    Sim.setSampling({});
    try {
      Sim.run(Run.refTrace());
      FAIL() << "expected SimulationOverrun (fast=" << Fast << ")";
    } catch (const SimulationOverrun &O) {
      EXPECT_GT(O.Cycle, O.Limit);
      EXPECT_EQ(O.TraceSize, Run.refTrace().size());
      EXPECT_LT(O.Retired, O.TraceSize);
      EXPECT_NE(std::string(O.what()).find("overrun"), std::string::npos);
    }
  }
}

} // namespace
