//===- tests/TransformTest.cpp - GVN, LICM, unroll, inline unit tests -----===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Positive and negative unit tests for each mid-end transform, run
/// directly through the transform:: entry points: GVN replaces
/// dominated redundancies but never across a clobbering load; LICM
/// hoists invariant pure computation but refuses memory operations,
/// loop-varying operands, and values live into the header; the
/// unroller respects its trip and size budgets and preserves trip
/// semantics (checked by VM output equality); the inliner refuses
/// recursive and over-budget callees. Every transformed module must
/// pass the strict (dataflow-checking) verifier.
///
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisManager.h"
#include "sir/Parser.h"
#include "sir/Verifier.h"
#include "transform/Transforms.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::sir;

namespace {

std::unique_ptr<Module> parseOrDie(const char *Src) {
  ParseResult PR = parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error << " at line " << PR.Line;
  if (PR.M)
    PR.M->renumber();
  return std::move(PR.M);
}

void expectStrictlyValid(const Module &M) {
  VerifyOptions Strict;
  Strict.CheckDataflow = true;
  for (const std::string &E : verify(M, Strict))
    ADD_FAILURE() << "verify: " << E;
}

unsigned countOps(const Function &F, Opcode Op) {
  unsigned N = 0;
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() == Op)
      ++N;
  });
  return N;
}

/// Runs main() and expects the same observable behavior as \p Reference
/// produced before the transform.
void expectSameBehavior(const Module &Reference, const Module &Transformed) {
  vm::VM::Result Want = vm::runModule(Reference, {});
  vm::VM::Result Got = vm::runModule(Transformed, {});
  ASSERT_TRUE(Want.Ok) << Want.Error;
  ASSERT_TRUE(Got.Ok) << Got.Error;
  EXPECT_EQ(Want.Output, Got.Output);
  EXPECT_EQ(Want.ExitValue, Got.ExitValue);
}

//===----------------------------------------------------------------------===//
// GVN
//===----------------------------------------------------------------------===//

TEST(GVN, ReplacesDominatedRedundancy) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 12
  li %b, 30
  add %t1, %a, %b
  bltz %t1, other
body:
  add %t2, %a, %b
  add %s, %t1, %t2
  out %s
  ret %s
other:
  out %t1
  ret %t1
}
)");
  auto Reference = M->clone();
  Function &F = *M->functionByName("main");
  analysis::AnalysisManager AM;
  EXPECT_EQ(transform::runGVN(F, AM), 1u);
  // The cross-block %t2 = %a+%b became a move of %t1; block-local CSE
  // could not see it (the bltz splits the region).
  EXPECT_EQ(countOps(F, Opcode::Move), 1u);
  expectStrictlyValid(*M);
  expectSameBehavior(*Reference, *M);
}

TEST(GVN, DoesNotCrossClobberingLoad) {
  auto M = parseOrDie(R"(
global g 1 = 7

func main() {
entry:
  li %a, 2
  li %b, 3
  add %t1, %a, %b
  lw %a, g
  add %t2, %a, %b
  out %t1
  out %t2
  ret
}
)");
  Function &F = *M->functionByName("main");
  analysis::AnalysisManager AM;
  // The lw redefines %a between the two adds: no redundancy exists, and
  // the loaded value itself must never be treated as a numberable pure
  // expression.
  EXPECT_EQ(transform::runGVN(F, AM), 0u);
  EXPECT_EQ(countOps(F, Opcode::Move), 0u);
  EXPECT_EQ(countOps(F, Opcode::Add), 2u);
  expectStrictlyValid(*M);
}

TEST(GVN, DoesNotInheritAcrossJoin) {
  auto M = parseOrDie(R"(
func main(%x) {
entry:
  li %a, 4
  li %b, 9
  add %t1, %a, %b
  blez %x, left
right:
  jmp join
left:
  jmp join
join:
  add %t2, %a, %b
  out %t2
  ret %t2
}
)");
  Function &F = *M->functionByName("main");
  analysis::AnalysisManager AM;
  // The join has two predecessors; non-SSA value numbering only
  // inherits down unique-predecessor edges, so %t2 must survive even
  // though %t1's value would happen to be correct here.
  EXPECT_EQ(transform::runGVN(F, AM), 0u);
  EXPECT_EQ(countOps(F, Opcode::Move), 0u);
  expectStrictlyValid(*M);
}

//===----------------------------------------------------------------------===//
// LICM
//===----------------------------------------------------------------------===//

TEST(LICM, HoistsInvariantToPreheader) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 21
  li %b, 2
  li %i, 0
  li %s, 0
loop:
  mul %inv, %a, %b
  add %s, %s, %inv
  out %s
  addi %i, %i, 1
  slti %c, %i, 10
  bgtz %c, loop
exit:
  ret %s
}
)");
  auto Reference = M->clone();
  Function &F = *M->functionByName("main");
  analysis::AnalysisManager AM;
  EXPECT_EQ(transform::runLICM(F, AM), 1u);
  // The mul now lives in the preheader (entry, block 0), not the loop.
  ASSERT_GE(F.blocks().size(), 2u);
  EXPECT_EQ(countOps(F, Opcode::Mul), 1u);
  bool InEntry = false;
  for (const auto &I : F.blocks()[0]->instructions())
    if (I->op() == Opcode::Mul)
      InEntry = true;
  EXPECT_TRUE(InEntry);
  expectStrictlyValid(*M);
  expectSameBehavior(*Reference, *M);
}

TEST(LICM, RefusesMemoryOperations) {
  auto M = parseOrDie(R"(
global g 1 = 5

func main() {
entry:
  li %i, 0
  li %s, 0
loop:
  lw %v, g
  add %s, %s, %v
  sw %s, g
  addi %i, %i, 1
  slti %c, %i, 4
  bgtz %c, loop
exit:
  out %s
  ret %s
}
)");
  Function &F = *M->functionByName("main");
  analysis::AnalysisManager AM;
  // The lw looks invariant (g's address never changes) but the sw in
  // the same loop aliases it: memory operations are categorically not
  // hoisted.
  EXPECT_EQ(transform::runLICM(F, AM), 0u);
  bool LoadInLoop = false;
  for (const auto &I : F.blocks()[1]->instructions())
    if (I->isLoad())
      LoadInLoop = true;
  EXPECT_TRUE(LoadInLoop);
  expectStrictlyValid(*M);
}

TEST(LICM, RefusesLoopVaryingOperand) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %b, 3
  li %i, 0
  li %s, 0
loop:
  mul %v, %i, %b
  add %s, %s, %v
  addi %i, %i, 1
  slti %c, %i, 4
  bgtz %c, loop
exit:
  out %s
  ret %s
}
)");
  Function &F = *M->functionByName("main");
  analysis::AnalysisManager AM;
  EXPECT_EQ(transform::runLICM(F, AM), 0u); // %i changes every trip.
  expectStrictlyValid(*M);
}

TEST(LICM, RefusesValueLiveIntoHeader) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 5
  li %b, 6
  li %v, 0
  li %i, 0
loop:
  out %v
  mul %v, %a, %b
  addi %i, %i, 1
  slti %c, %i, 3
  bgtz %c, loop
exit:
  ret %v
}
)");
  auto Reference = M->clone();
  Function &F = *M->functionByName("main");
  analysis::AnalysisManager AM;
  // %v is printed before it is recomputed, so the first iteration must
  // observe the preheader's 0. Hoisting the mul would print 30 instead:
  // the live-into-header check has to refuse.
  EXPECT_EQ(transform::runLICM(F, AM), 0u);
  expectStrictlyValid(*M);
  expectSameBehavior(*Reference, *M);
}

//===----------------------------------------------------------------------===//
// Unroll
//===----------------------------------------------------------------------===//

const char *CountedLoopSrc = R"(
func main() {
entry:
  li %i, 0
  li %s, 5
loop:
  add %s, %s, %i
  out %s
  addi %i, %i, 1
  slti %c, %i, 6
  bgtz %c, loop
exit:
  ret %s
}
)";

TEST(Unroll, FullyUnrollsCountedLoop) {
  auto M = parseOrDie(CountedLoopSrc);
  auto Reference = M->clone();
  Function &F = *M->functionByName("main");
  analysis::AnalysisManager AM;
  transform::UnrollResult R =
      transform::runUnroll(F, AM, transform::UnrollOptions());
  EXPECT_EQ(R.FullyUnrolled, 1u);
  EXPECT_EQ(R.PartiallyUnrolled, 0u);
  EXPECT_GT(R.InstrsAdded, 0);
  // The loop's conditional branch is gone: the body is straight-line.
  EXPECT_EQ(countOps(F, Opcode::Bgtz), 0u);
  expectStrictlyValid(*M);
  expectSameBehavior(*Reference, *M);
}

TEST(Unroll, RespectsTripCountBudget) {
  auto M = parseOrDie(CountedLoopSrc);
  Function &F = *M->functionByName("main");
  analysis::AnalysisManager AM;
  transform::UnrollOptions Opts;
  Opts.MaxTripCount = 5; // The loop runs 6 trips.
  transform::UnrollResult R = transform::runUnroll(F, AM, Opts);
  EXPECT_EQ(R.FullyUnrolled, 0u);
  EXPECT_EQ(countOps(F, Opcode::Bgtz), 1u);
  expectStrictlyValid(*M);
}

TEST(Unroll, RespectsSizeBudget) {
  auto M = parseOrDie(CountedLoopSrc);
  Function &F = *M->functionByName("main");
  analysis::AnalysisManager AM;
  transform::UnrollOptions Opts;
  Opts.MaxUnrolledInstrs = 23; // 6 trips x (5-1) body instrs = 24 > 23.
  transform::UnrollResult R = transform::runUnroll(F, AM, Opts);
  EXPECT_EQ(R.FullyUnrolled, 0u);

  auto M2 = parseOrDie(CountedLoopSrc);
  auto Reference = M2->clone();
  Function &F2 = *M2->functionByName("main");
  analysis::AnalysisManager AM2;
  Opts.MaxUnrolledInstrs = 24; // Exactly at the budget: allowed.
  R = transform::runUnroll(F2, AM2, Opts);
  EXPECT_EQ(R.FullyUnrolled, 1u);
  expectStrictlyValid(*M2);
  expectSameBehavior(*Reference, *M2);
}

TEST(Unroll, PartiallyUnrollsUnknownTripCount) {
  auto M = parseOrDie(R"(
global bound 1 = 7

func main() {
entry:
  lw %n, bound
  li %i, 0
  li %s, 0
loop:
  add %s, %s, %i
  addi %i, %i, 1
  slt %c, %i, %n
  bgtz %c, loop
exit:
  out %s
  ret %s
}
)");
  auto Reference = M->clone();
  Function &F = *M->functionByName("main");
  analysis::AnalysisManager AM;

  // Factor 0 (full-only): the lw-defined bound is not a compile-time
  // trip count, so nothing happens.
  transform::UnrollResult R =
      transform::runUnroll(F, AM, transform::UnrollOptions());
  EXPECT_EQ(R.FullyUnrolled, 0u);
  EXPECT_EQ(R.PartiallyUnrolled, 0u);

  transform::UnrollOptions Opts;
  Opts.Factor = 4;
  R = transform::runUnroll(F, AM, Opts);
  EXPECT_EQ(R.FullyUnrolled, 0u);
  EXPECT_EQ(R.PartiallyUnrolled, 1u);
  EXPECT_EQ(countOps(F, Opcode::Bgtz), 4u); // One exit test per copy.
  expectStrictlyValid(*M);
  expectSameBehavior(*Reference, *M);
}

//===----------------------------------------------------------------------===//
// Inline
//===----------------------------------------------------------------------===//

TEST(Inline, InlinesSmallLeafCallee) {
  auto M = parseOrDie(R"(
func helper(%a, %b) {
entry:
  add %t, %a, %b
  add %u, %t, %t
  ret %u
}

func main() {
entry:
  li %x, 3
  li %y, 4
  call %r, helper(%x, %y)
  out %r
  ret %r
}
)");
  auto Reference = M->clone();
  transform::InlineResult R = transform::runInline(*M);
  EXPECT_EQ(R.CallsInlined, 1u);
  EXPECT_EQ(R.SkippedRecursive, 0u);
  EXPECT_EQ(R.SkippedBudget, 0u);
  EXPECT_EQ(countOps(*M->functionByName("main"), Opcode::Call), 0u);
  expectStrictlyValid(*M);
  expectSameBehavior(*Reference, *M);
}

TEST(Inline, RefusesRecursiveCallees) {
  auto M = parseOrDie(R"(
func count(%n) {
entry:
  blez %n, base
rec:
  addi %m, %n, -1
  call %r, count(%m)
  addi %r1, %r, 1
  ret %r1
base:
  li %z, 0
  ret %z
}

func main() {
entry:
  li %n, 3
  call %r, count(%n)
  out %r
  ret %r
}
)");
  auto Reference = M->clone();
  transform::InlineResult R = transform::runInline(*M);
  // Both the self-call inside count() and main's call into the cyclic
  // function are refused.
  EXPECT_EQ(R.CallsInlined, 0u);
  EXPECT_GE(R.SkippedRecursive, 2u);
  EXPECT_EQ(countOps(*M->functionByName("main"), Opcode::Call), 1u);
  expectStrictlyValid(*M);
  expectSameBehavior(*Reference, *M);
}

TEST(Inline, RefusesOverBudgetCallee) {
  const char *Src = R"(
func helper(%a) {
entry:
  addi %a, %a, 1
  addi %a, %a, 2
  addi %a, %a, 3
  ret %a
}

func main() {
entry:
  li %x, 10
  call %r, helper(%x)
  out %r
  ret %r
}
)";
  auto M = parseOrDie(Src);
  transform::InlineOptions Tight;
  Tight.MaxCalleeInstrs = 3; // helper has 4 instructions.
  transform::InlineResult R = transform::runInline(*M, Tight);
  EXPECT_EQ(R.CallsInlined, 0u);
  EXPECT_GE(R.SkippedBudget, 1u);
  EXPECT_EQ(countOps(*M->functionByName("main"), Opcode::Call), 1u);

  auto M2 = parseOrDie(Src);
  auto Reference = M2->clone();
  transform::InlineOptions Loose;
  Loose.MaxCalleeInstrs = 4;
  R = transform::runInline(*M2, Loose);
  EXPECT_EQ(R.CallsInlined, 1u);
  expectStrictlyValid(*M2);
  expectSameBehavior(*Reference, *M2);
}

} // namespace
