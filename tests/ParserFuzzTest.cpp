//===- tests/ParserFuzzTest.cpp - Parser robustness -----------------------===//

#include "sir/Parser.h"
#include "sir/Printer.h"
#include "sir/Verifier.h"
#include "support/Rng.h"

#include "PaperExamples.h"

#include <cstdlib>

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::sir;

namespace {

/// Base seed for the randomized cases; FPINT_FUZZ_SEED reruns the whole
/// suite over a different stream (useful for widening coverage in
/// nightly CI without editing the test).
uint64_t baseSeed() {
  if (const char *Env = std::getenv("FPINT_FUZZ_SEED"))
    return std::strtoull(Env, nullptr, 0);
  return 1;
}

/// Mixes the base seed with the gtest iteration parameter and records
/// both on the failure trace, so a red run reports exactly which
/// (seed, iteration) pair to replay.
uint64_t caseSeed(int Iteration, uint64_t Salt) {
  uint64_t Seed = baseSeed() * 0x9e3779b97f4a7c15ull +
                  static_cast<uint64_t>(Iteration) * Salt;
  return Seed;
}

#define FPINT_TRACE_SEED(Iteration, Seed)                                      \
  SCOPED_TRACE(::testing::Message()                                            \
               << "FPINT_FUZZ_SEED=" << baseSeed() << " iteration="            \
               << (Iteration) << " case seed=" << (Seed))

// The parser must never crash: any byte soup either parses into a
// verifiable module or produces a diagnostic with a line number.
class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  uint64_t Seed = caseSeed(GetParam(), 2654435761u);
  FPINT_TRACE_SEED(GetParam(), Seed);
  Rng R(Seed);
  const char Alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789%,()+-:#{}[]. \n\tfunc global";
  std::string Soup;
  size_t Len = 1 + R.nextBelow(400);
  for (size_t I = 0; I < Len; ++I)
    Soup += Alphabet[R.nextBelow(sizeof(Alphabet) - 1)];
  ParseResult PR = parseModule(Soup);
  if (PR.ok()) {
    // Anything accepted must print without crashing.
    (void)toString(*PR.M);
  } else {
    EXPECT_FALSE(PR.Error.empty());
    EXPECT_GE(PR.Line, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Soup, ParserFuzz, ::testing::Range(0, 50));

// Mutations of a valid program: delete/duplicate/garble single lines.
class MutationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MutationFuzz, MutatedProgramsFailCleanly) {
  uint64_t Seed = caseSeed(GetParam(), 40503u) + 7;
  FPINT_TRACE_SEED(GetParam(), Seed);
  Rng R(Seed);
  std::string Src = fixtures::InvalidateForCall;

  // Split into lines.
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start <= Src.size()) {
    size_t End = Src.find('\n', Start);
    if (End == std::string::npos) {
      Lines.push_back(Src.substr(Start));
      break;
    }
    Lines.push_back(Src.substr(Start, End - Start));
    Start = End + 1;
  }

  unsigned Mutations = 1 + R.nextBelow(3);
  for (unsigned M = 0; M < Mutations && !Lines.empty(); ++M) {
    size_t Pick = R.nextBelow(Lines.size());
    switch (R.nextBelow(4)) {
    case 0:
      Lines.erase(Lines.begin() + Pick);
      break;
    case 1:
      Lines.insert(Lines.begin() + Pick, Lines[Pick]);
      break;
    case 2:
      if (!Lines[Pick].empty())
        Lines[Pick][R.nextBelow(Lines[Pick].size())] =
            static_cast<char>('a' + R.nextBelow(26));
      break;
    case 3:
      Lines[Pick] += " %x";
      break;
    }
  }

  std::string Mutated;
  for (const std::string &L : Lines)
    Mutated += L + "\n";

  ParseResult PR = parseModule(Mutated);
  if (!PR.ok()) {
    EXPECT_FALSE(PR.Error.empty());
    return;
  }
  // If it still parses, printing and verifying must not crash; the
  // verifier may legitimately report diagnostics.
  (void)toString(*PR.M);
  (void)verify(*PR.M);
}

INSTANTIATE_TEST_SUITE_P(Mutations, MutationFuzz, ::testing::Range(0, 60));

TEST(ParserEdge, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(parseModule("").ok());
  EXPECT_TRUE(parseModule("\n\n  \n# only a comment\n").ok());
}

TEST(ParserEdge, HugeImmediates) {
  ParseResult PR = parseModule(R"(
func main() {
entry:
  li %a, 2147483647
  li %b, -2147483648
  li %c, 0x7fffffff
  out %a
  out %b
  out %c
  ret
}
)");
  ASSERT_TRUE(PR.ok()) << PR.Error;
}

TEST(ParserEdge, DeeplyNestedLabelsAndBranches) {
  std::string Src = "func main() {\nentry:\n  li %x, 0\n";
  for (int I = 0; I < 200; ++I) {
    Src += "  addi %x, %x, 1\n  blez %x, l" + std::to_string(I) + "\nl" +
           std::to_string(I) + ":\n";
  }
  Src += "  out %x\n  ret\n}\n";
  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  EXPECT_EQ(PR.M->functionByName("main")->blocks().size(), 201u);
}

} // namespace
