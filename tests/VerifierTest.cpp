//===- tests/VerifierTest.cpp - Negative tests for the sir verifier -------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each test constructs a module that violates exactly one invariant and
/// checks the verifier names it. The harness trusts "verifier-clean" as
/// a synonym for "safe to run through the VM and pipeline", so these
/// tests pin down that the checks actually fire.
///
//===----------------------------------------------------------------------===//

#include "sir/IRBuilder.h"
#include "sir/Parser.h"
#include "sir/Verifier.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::sir;

namespace {

/// True when some diagnostic mentions \p Needle.
bool mentions(const std::vector<std::string> &Diags,
              const std::string &Needle) {
  for (const std::string &D : Diags)
    if (D.find(Needle) != std::string::npos)
      return true;
  return false;
}

std::string flatten(const std::vector<std::string> &Diags) {
  std::string S;
  for (const std::string &D : Diags)
    S += D + "\n";
  return S;
}

/// A minimal well-formed module: main with one block ending in ret.
struct Fixture {
  std::unique_ptr<Module> M = std::make_unique<Module>();
  Function *Main = nullptr;
  BasicBlock *Entry = nullptr;
  IRBuilder B;

  Fixture() {
    Main = M->addFunction("main");
    Entry = Main->addBlock("entry");
    B.setInsertPoint(Entry);
  }
};

VerifyOptions strict() {
  VerifyOptions Opts;
  Opts.CheckDataflow = true;
  return Opts;
}

} // namespace

TEST(VerifierTest, CleanModuleHasNoDiagnostics) {
  Fixture F;
  Reg A = F.B.li(1);
  Reg C = F.B.addi(A, 2);
  F.B.out(C);
  F.B.ret();
  F.Main->renumber();
  EXPECT_TRUE(verify(*F.M).empty());
  EXPECT_TRUE(verify(*F.M, strict()).empty());
}

// --- Structural CFG damage ----------------------------------------------

TEST(VerifierTest, MissingBranchTarget) {
  Fixture F;
  Reg A = F.B.li(1);
  F.B.beq(A, A, nullptr);
  F.B.ret();
  F.Main->renumber();
  auto Diags = verify(*F.M);
  EXPECT_TRUE(mentions(Diags, "missing branch target")) << flatten(Diags);
}

TEST(VerifierTest, BranchIntoAnotherFunction) {
  Fixture F;
  Function *Other = F.M->addFunction("other");
  BasicBlock *Foreign = Other->addBlock("entry");
  IRBuilder OB(Foreign);
  OB.ret();
  Other->renumber();

  Reg A = F.B.li(1);
  F.B.beq(A, A, Foreign);
  F.B.ret();
  F.Main->renumber();
  auto Diags = verify(*F.M);
  EXPECT_TRUE(mentions(Diags, "belongs to another function"))
      << flatten(Diags);
}

TEST(VerifierTest, TerminatorInMidBlock) {
  Fixture F;
  F.B.ret();
  F.B.out(F.B.li(1)); // Dead code after the terminator.
  F.B.ret();
  F.Main->renumber();
  auto Diags = verify(*F.M);
  EXPECT_TRUE(mentions(Diags, "terminator is not the last instruction"))
      << flatten(Diags);
}

TEST(VerifierTest, FallsOffFinalBlock) {
  Fixture F;
  F.B.out(F.B.li(7)); // No ret/jump at the end.
  F.Main->renumber();
  auto Diags = verify(*F.M);
  EXPECT_TRUE(mentions(Diags, "fall off")) << flatten(Diags);
}

TEST(VerifierTest, FunctionWithNoBlocks) {
  auto M = std::make_unique<Module>();
  M->addFunction("main");
  auto Diags = verify(*M);
  EXPECT_TRUE(mentions(Diags, "no blocks")) << flatten(Diags);
}

// --- Symbol resolution ---------------------------------------------------

TEST(VerifierTest, UnknownGlobal) {
  Fixture F;
  MemOperand Mem;
  Mem.Symbol = "nonexistent";
  F.B.out(F.B.lw(Mem));
  F.B.ret();
  F.Main->renumber();
  auto Diags = verify(*F.M);
  EXPECT_TRUE(mentions(Diags, "unknown global")) << flatten(Diags);
}

TEST(VerifierTest, UnknownCallee) {
  Fixture F;
  F.B.call("ghost", {}, /*WantResult=*/false);
  F.B.ret();
  F.Main->renumber();
  auto Diags = verify(*F.M);
  EXPECT_TRUE(mentions(Diags, "unknown callee")) << flatten(Diags);
}

TEST(VerifierTest, ArgumentCountMismatch) {
  Fixture F;
  Function *Helper = F.M->addFunction("helper");
  Helper->addFormal();
  BasicBlock *HEntry = Helper->addBlock("entry");
  IRBuilder HB(HEntry);
  HB.ret(Helper->formals()[0]);
  Helper->renumber();

  F.B.call("helper", {}, /*WantResult=*/false); // Needs one argument.
  F.B.ret();
  F.Main->renumber();
  auto Diags = verify(*F.M);
  EXPECT_TRUE(mentions(Diags, "argument count")) << flatten(Diags);
}

// --- Register classes and partition bits ---------------------------------

TEST(VerifierTest, IntOpOverFpRegisters) {
  Fixture F;
  Reg FpA = F.B.fli(1.0f);
  Instruction *I = new Instruction(Opcode::Add);
  I->setDef(F.Main->newReg(RegClass::Int));
  I->uses() = {FpA, FpA};
  F.Entry->append(std::unique_ptr<Instruction>(I));
  F.B.ret();
  F.Main->renumber();
  auto Diags = verify(*F.M);
  EXPECT_TRUE(mentions(Diags, "wrong class")) << flatten(Diags);
}

TEST(VerifierTest, FpaBitOnUnsupportedOpcode) {
  Fixture F;
  Reg A = F.B.li(6);
  Reg C = F.B.mul(A, A); // Mul is not in the FPa-offloadable set.
  F.Entry->back()->setInFpa(true);
  F.B.out(C);
  F.B.ret();
  F.Main->renumber();
  auto Diags = verify(*F.M);
  EXPECT_TRUE(mentions(Diags, "not offloadable")) << flatten(Diags);
}

TEST(VerifierTest, FpaBitOnNativeFpOpcode) {
  Fixture F;
  Reg A = F.B.fli(2.0f);
  F.B.fadd(A, A);
  F.Entry->back()->setInFpa(true);
  F.B.ret();
  F.Main->renumber();
  auto Diags = verify(*F.M);
  EXPECT_TRUE(mentions(Diags, "must not carry the FPa bit"))
      << flatten(Diags);
}

TEST(VerifierTest, FrameAddressCombinedWithBase) {
  Fixture F;
  Reg A = F.B.li(0);
  MemOperand Mem;
  Mem.IsFrame = true;
  Mem.Base = A;
  F.B.sw(A, Mem);
  F.B.ret();
  F.Main->renumber();
  auto Diags = verify(*F.M);
  EXPECT_TRUE(mentions(Diags, "frame address")) << flatten(Diags);
}

// --- Strict dataflow (use before def) ------------------------------------

TEST(VerifierTest, StraightLineUseBeforeDef) {
  Fixture F;
  Reg Ghost = F.Main->newReg(RegClass::Int);
  Instruction *I = new Instruction(Opcode::AddI);
  I->setDef(F.Main->newReg(RegClass::Int));
  I->uses() = {Ghost};
  I->setImm(1);
  F.Entry->append(std::unique_ptr<Instruction>(I));
  F.B.ret();
  F.Main->renumber();
  // The default verifier accepts this (the %zero convention reads an
  // undefined register as 0)...
  EXPECT_TRUE(verify(*F.M).empty());
  // ...but the strict mode used on generated modules rejects it.
  auto Diags = verify(*F.M, strict());
  EXPECT_TRUE(mentions(Diags, "without a definition on every path"))
      << flatten(Diags);
}

TEST(VerifierTest, DefOnOnlyOneDiamondArmIsFlagged) {
  const char *Src = R"(
func main() {
entry:
  li %c, 1
  beq %c, %c, skip
  li %x, 5
skip:
  out %x
  ret
}
)";
  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  auto Diags = verify(*PR.M, strict());
  EXPECT_TRUE(mentions(Diags, "without a definition on every path"))
      << flatten(Diags);
}

TEST(VerifierTest, DefOnBothArmsIsClean) {
  const char *Src = R"(
func main() {
entry:
  li %c, 1
  beq %c, %c, other
  li %x, 5
  jmp join
other:
  li %x, 9
join:
  out %x
  ret
}
)";
  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  EXPECT_TRUE(verify(*PR.M, strict()).empty());
}

TEST(VerifierTest, LoopCarriedDefIsClean) {
  // The counter is defined before the loop and redefined inside it; the
  // backedge must not erase the fact.
  const char *Src = R"(
func main() {
entry:
  li %i, 4
loop:
  addi %i, %i, -1
  bgtz %i, loop
  out %i
  ret
}
)";
  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  EXPECT_TRUE(verify(*PR.M, strict()).empty());
}

TEST(VerifierTest, DefOnlyInsideLoopBodyDiamondIsFlagged) {
  // %x is defined only under a branch inside the loop; the use after the
  // loop is not dominated by a def on every path.
  const char *Src = R"(
func main() {
entry:
  li %i, 4
loop:
  addi %i, %i, -1
  beq %i, %i, skip
  li %x, 3
skip:
  bgtz %i, loop
  out %x
  ret
}
)";
  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  auto Diags = verify(*PR.M, strict());
  EXPECT_TRUE(mentions(Diags, "without a definition on every path"))
      << flatten(Diags);
}

TEST(VerifierTest, FormalsCountAsDefined) {
  const char *Src = R"(
func helper(%a, %b) {
entry:
  add %c, %a, %b
  ret %c
}

func main() {
entry:
  li %x, 2
  li %y, 3
  call %r, helper(%x, %y)
  out %r
  ret
}
)";
  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  EXPECT_TRUE(verify(*PR.M, strict()).empty());
}
