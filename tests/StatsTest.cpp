//===- tests/StatsTest.cpp - Telemetry subsystem tests --------------------===//
//
// Covers the stall-attribution partition invariant, the issue-slot
// histograms, the telemetry-off = seed-identical contract, canonical
// JSON round-trips, and the report differ the regression gate uses.

#include "core/Pipeline.h"
#include "sir/Parser.h"
#include "stats/Events.h"
#include "stats/Report.h"
#include "stats/StatsRegistry.h"
#include "support/Json.h"
#include "support/Table.h"
#include "timing/Simulator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace fpint;
using namespace fpint::core;
using namespace fpint::timing;

namespace {

PipelineRun compileSrc(const std::string &Src, partition::Scheme S) {
  sir::ParseResult PR = sir::parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error;
  PipelineConfig Cfg;
  Cfg.Scheme = S;
  // Hand-shaped dependence kernels; the optimizer would fold them.
  Cfg.RunOptimizations = false;
  PipelineRun Run = compileAndMeasure(*PR.M, Cfg);
  EXPECT_TRUE(Run.ok()) << (Run.Errors.empty() ? "?" : Run.Errors[0]);
  return Run;
}

/// Wide independent integer work: 16 parallel accumulator chains.
std::string wideKernel() {
  std::string Src = "func main() {\nentry:\n";
  for (int C = 0; C < 16; ++C)
    Src += "  li %a" + std::to_string(C) + ", " + std::to_string(C) + "\n";
  Src += "  li %i, 0\nloop:\n";
  for (int C = 0; C < 16; ++C)
    Src += "  addi %a" + std::to_string(C) + ", %a" + std::to_string(C) +
           ", 3\n";
  Src += "  addi %i, %i, 1\n  slti %t, %i, 200\n  bne %t, %zero, loop\n";
  for (int C = 0; C < 16; ++C)
    Src += "  out %a" + std::to_string(C) + "\n";
  Src += "  ret\n}\n";
  return Src;
}

/// One long serially dependent multiply chain (6-cycle latency).
std::string mulChainKernel() {
  std::string Src = "func main() {\nentry:\n  li %a, 3\n  li %b, 7\n";
  for (int I = 0; I < 200; ++I)
    Src += "  mul %a, %a, %b\n";
  Src += "  out %a\n  ret\n}\n";
  return Src;
}

/// Many independent divides (unpipelined, 12-cycle units).
std::string divKernel() {
  std::string Src = "func main() {\nentry:\n  li %a, 1000000\n  li %b, 3\n";
  for (int I = 0; I < 100; ++I)
    Src += "  div %q" + std::to_string(I) + ", %a, %b\n";
  Src += "  out %q99\n  ret\n}\n";
  return Src;
}

/// Simulates \p Run on \p M with a StallBreakdown sink attached.
stats::StallBreakdown simulateWithSink(const PipelineRun &Run,
                                       const MachineConfig &M) {
  stats::StallBreakdown B;
  Simulator Sim(M, Run.Alloc);
  Sim.setEventSink(&B);
  SimStats S = Sim.run(Run.refTrace());
  EXPECT_EQ(B.Cycles, S.Cycles);
  return B;
}

uint64_t histSum(const std::vector<uint64_t> &H) {
  uint64_t Sum = 0;
  for (uint64_t N : H)
    Sum += N;
  return Sum;
}

uint64_t histWeightedSum(const std::vector<uint64_t> &H) {
  uint64_t Sum = 0;
  for (size_t K = 0; K < H.size(); ++K)
    Sum += K * H[K];
  return Sum;
}

void expectInvariants(const stats::StallBreakdown &B, const SimStats &S) {
  EXPECT_TRUE(B.partitionHolds());
  EXPECT_EQ(B.attributedStallCycles(), B.NonIssuingCycles);
  EXPECT_EQ(B.stalls(stats::StallReason::None), 0u);
  EXPECT_EQ(histSum(B.IntIssueHist), S.Cycles);
  EXPECT_EQ(histSum(B.FpIssueHist), S.Cycles);
  EXPECT_EQ(histWeightedSum(B.IntIssueHist), S.IntIssued);
  EXPECT_EQ(histWeightedSum(B.FpIssueHist), S.FpIssued);
}

} // namespace

//===----------------------------------------------------------------------===//
// Stall attribution.
//===----------------------------------------------------------------------===//

TEST(Stats, PartitionInvariantOnHandBuiltKernels) {
  for (const std::string &Src :
       {wideKernel(), mulChainKernel(), divKernel()}) {
    PipelineRun Run = compileSrc(Src, partition::Scheme::None);
    for (MachineConfig M :
         {MachineConfig::fourWay(), MachineConfig::eightWay()}) {
      M.FpaEnabled = false;
      Simulator Sim(M, Run.Alloc);
      stats::StallBreakdown B;
      Sim.setEventSink(&B);
      SimStats S = Sim.run(Run.refTrace());
      expectInvariants(B, S);
      EXPECT_GT(B.NonIssuingCycles, 0u);
    }
  }
}

TEST(Stats, DependentMulChainStallsOnOperandsOrWindow) {
  PipelineRun Run = compileSrc(mulChainKernel(), partition::Scheme::None);
  MachineConfig M = MachineConfig::fourWay();
  M.FpaEnabled = false;
  stats::StallBreakdown B = simulateWithSink(Run, M);
  // A serial 6-cycle multiply chain spends most cycles waiting for the
  // previous multiply (attributed to operands or, once dispatch backs
  // up, to the full INT window).
  EXPECT_GT(B.stalls(stats::StallReason::OperandWait) +
                B.stalls(stats::StallReason::WindowFullInt),
            Run.RefResult.Output.size() + 500);
}

TEST(Stats, TinyWindowAttributesWindowFullInt) {
  PipelineRun Run = compileSrc(mulChainKernel(), partition::Scheme::None);
  MachineConfig M = MachineConfig::fourWay();
  M.FpaEnabled = false;
  M.IntWindow = 2;
  stats::StallBreakdown B = simulateWithSink(Run, M);
  EXPECT_GT(B.stalls(stats::StallReason::WindowFullInt), 100u);
  EXPECT_GT(B.IntWindowFullCycles, 100u);
}

TEST(Stats, IndependentDividesAttributeUnitBusy) {
  PipelineRun Run = compileSrc(divKernel(), partition::Scheme::None);
  MachineConfig M = MachineConfig::fourWay();
  M.FpaEnabled = false;
  stats::StallBreakdown B = simulateWithSink(Run, M);
  // 100 ready divides sharing 2 unpipelined units: many cycles have
  // ready instructions but no free unit.
  EXPECT_GT(B.stalls(stats::StallReason::UnitBusy) +
                B.stalls(stats::StallReason::WindowFullInt) +
                B.stalls(stats::StallReason::RobFull),
            200u);
  EXPECT_GT(B.stalls(stats::StallReason::UnitBusy), 0u);
}

TEST(Stats, WorkloadBreakdownSeesMispredictsAndDCacheMisses) {
  workloads::Workload W = workloads::workloadByName("compress");
  PipelineConfig Cfg;
  Cfg.Scheme = partition::Scheme::Advanced;
  Cfg.TrainArgs = W.TrainArgs;
  Cfg.RefArgs = W.RefArgs;
  PipelineRun Run = compileAndMeasure(*W.M, Cfg);
  ASSERT_TRUE(Run.ok());
  stats::StallBreakdown B =
      simulateWithSink(Run, MachineConfig::fourWay());
  EXPECT_TRUE(B.partitionHolds());
  EXPECT_GT(B.stalls(stats::StallReason::FetchMispredict), 0u);
  EXPECT_GT(B.stalls(stats::StallReason::DCacheMissWait), 0u);
}

//===----------------------------------------------------------------------===//
// Telemetry-off is bit-identical to the seed simulator.
//===----------------------------------------------------------------------===//

TEST(Stats, TelemetryOffMatchesTelemetryOnStats) {
  PipelineRun Run = compileSrc(wideKernel(), partition::Scheme::None);
  MachineConfig M = MachineConfig::fourWay();
  M.FpaEnabled = false;

  Simulator Plain(M, Run.Alloc);
  SimStats Off = Plain.run(Run.refTrace());

  stats::StallBreakdown B;
  Simulator Instrumented(M, Run.Alloc);
  Instrumented.setEventSink(&B);
  SimStats On = Instrumented.run(Run.refTrace());

  EXPECT_EQ(Off.Cycles, On.Cycles);
  EXPECT_EQ(Off.Instructions, On.Instructions);
  EXPECT_EQ(Off.IntIssued, On.IntIssued);
  EXPECT_EQ(Off.FpIssued, On.FpIssued);
  EXPECT_EQ(Off.Mispredicts, On.Mispredicts);
  EXPECT_EQ(Off.DCacheMisses, On.DCacheMisses);
  EXPECT_EQ(Off.ICacheMisses, On.ICacheMisses);
  EXPECT_EQ(Off.StoreForwards, On.StoreForwards);
  EXPECT_EQ(Off.FpBusyCycles, On.FpBusyCycles);
  EXPECT_EQ(Off.IntIdleFpBusyCycles, On.IntIdleFpBusyCycles);

  // The bench tables are derived from these fields only, so equal
  // fields mean byte-identical tables; check one formatted row too.
  Table TOff({"cycles", "ipc"});
  TOff.addRow({Table::num(Off.Cycles), Table::fmt(Off.ipc())});
  Table TOn({"cycles", "ipc"});
  TOn.addRow({Table::num(On.Cycles), Table::fmt(On.ipc())});
  EXPECT_EQ(TOff.toString(), TOn.toString());
}

TEST(Stats, SimulatePropagatesTelemetryOnlyWhenEnabled) {
  PipelineRun Run = compileSrc(wideKernel(), partition::Scheme::None);
  MachineConfig M = MachineConfig::fourWay();
  M.FpaEnabled = false;

  stats::setTelemetryEnabled(false);
  SimStats Off = core::simulate(Run, M);
  EXPECT_EQ(Off.Telemetry, nullptr);

  stats::setTelemetryEnabled(true);
  SimStats On = core::simulate(Run, M);
  stats::setTelemetryEnabled(false);
  ASSERT_NE(On.Telemetry, nullptr);
  EXPECT_EQ(On.Cycles, Off.Cycles);
  expectInvariants(*On.Telemetry, On);
}

//===----------------------------------------------------------------------===//
// JSON.
//===----------------------------------------------------------------------===//

TEST(Json, EmitParseRoundTripsCanonically) {
  json::Value Doc = json::Value::object();
  Doc.set("string", "with \"quotes\", a \\ backslash,\n and a tab\t!");
  Doc.set("int", int64_t(-12345678901234));
  Doc.set("zero", 0);
  Doc.set("double", 0.30000000000000004);
  Doc.set("whole_double", 2.0);
  Doc.set("bool", true);
  Doc.set("null", json::Value());
  json::Value Arr = json::Value::array();
  for (int I = 0; I < 3; ++I)
    Arr.push(I * 1.5);
  Arr.push(json::Value::array());
  Arr.push(json::Value::object());
  Doc.set("arr", std::move(Arr));
  json::Value Nested = json::Value::object();
  Nested.set("k", "v");
  Doc.set("nested", std::move(Nested));

  std::string Once = Doc.dump();
  json::Value Parsed;
  std::string Err;
  ASSERT_TRUE(json::Value::parse(Once, Parsed, &Err)) << Err;
  EXPECT_EQ(Parsed.dump(), Once);

  // Kind preservation: whole doubles stay doubles, ints stay ints.
  EXPECT_EQ(Parsed.find("whole_double")->kind(), json::Value::Kind::Double);
  EXPECT_EQ(Parsed.find("int")->kind(), json::Value::Kind::Int);
  EXPECT_EQ(Parsed.find("int")->integer(), -12345678901234);
  EXPECT_EQ(Parsed.find("double")->number(), 0.30000000000000004);
  EXPECT_EQ(Parsed.find("string")->str(),
            "with \"quotes\", a \\ backslash,\n and a tab\t!");
}

TEST(Json, ParseRejectsMalformedInput) {
  json::Value V;
  std::string Err;
  EXPECT_FALSE(json::Value::parse("{\"a\": }", V, &Err));
  EXPECT_FALSE(json::Value::parse("[1, 2", V, &Err));
  EXPECT_FALSE(json::Value::parse("\"unterminated", V, &Err));
  EXPECT_FALSE(json::Value::parse("{} trailing", V, &Err));
  EXPECT_NE(Err.find("offset"), std::string::npos);
}

TEST(Json, DoubleFormattingIsShortestRoundTrip) {
  EXPECT_EQ(json::Value::formatDouble(2.0), "2.0");
  EXPECT_EQ(json::Value::formatDouble(0.5), "0.5");
  EXPECT_EQ(json::Value::formatDouble(1.0 / 3.0), "0.3333333333333333");
  double Tricky = 0.1 + 0.2;
  EXPECT_EQ(std::strtod(json::Value::formatDouble(Tricky).c_str(), nullptr),
            Tricky);
}

//===----------------------------------------------------------------------===//
// Registry and report.
//===----------------------------------------------------------------------===//

namespace {

/// A registry pre-filled with one simulated point per machine.
void fillRegistry(stats::StatsRegistry &Reg, const PipelineRun &Run,
                  const std::string &Name) {
  for (MachineConfig M :
       {MachineConfig::fourWay(), MachineConfig::eightWay()}) {
    M.FpaEnabled = false;
    stats::StallBreakdown B;
    Simulator Sim(M, Run.Alloc);
    Sim.setEventSink(&B);
    SimStats S = Sim.run(Run.refTrace());
    S.Telemetry = std::make_shared<stats::StallBreakdown>(B);
    // Wall time is nondeterministic; pin it so report dumps (and the
    // derived cycles-per-second) compare byte-for-byte across calls,
    // while staying nonzero so diffReports still emits its
    // informational sim_wall_ms row.
    S.SimWallMs = 1.0;
    Reg.record(Name, Run.Config, M, S);
  }
}

} // namespace

TEST(Report, RegistryDedupsAndEmitsCanonicalJson) {
  PipelineRun Run = compileSrc(wideKernel(), partition::Scheme::None);
  stats::StatsRegistry Reg;
  fillRegistry(Reg, Run, "wide");
  EXPECT_EQ(Reg.numRecords(), 2u);
  fillRegistry(Reg, Run, "wide"); // Duplicates keep the first record.
  EXPECT_EQ(Reg.numRecords(), 2u);

  json::Value Doc = Reg.reportJson("stats_test");
  EXPECT_EQ(Doc.strOr("schema", ""), stats::ReportSchema);
  EXPECT_EQ(Doc.strOr("binary", ""), "stats_test");
  ASSERT_EQ(Doc.find("runs")->size(), 2u);

  // Emit -> parse -> emit is byte-identical (canonical serialization).
  std::string Once = Doc.dump();
  json::Value Parsed;
  std::string Err;
  ASSERT_TRUE(json::Value::parse(Once, Parsed, &Err)) << Err;
  EXPECT_EQ(Parsed.dump(), Once);

  // The telemetry payload made it through with the invariant intact.
  const json::Value &Run0 = (*Doc.find("runs"))[0];
  const json::Value *Tel = Run0.find("stats")->find("telemetry");
  ASSERT_NE(Tel, nullptr);
  EXPECT_TRUE(Tel->find("partition_holds")->boolean());
  double StallSum = 0;
  for (const auto &KV : Tel->find("stalls")->members())
    StallSum += KV.second.number();
  EXPECT_EQ(StallSum, Tel->numberOr("non_issuing_cycles", -1));
}

TEST(Report, WriteReportProducesParseableFile) {
  PipelineRun Run = compileSrc(wideKernel(), partition::Scheme::None);
  stats::StatsRegistry Reg;
  fillRegistry(Reg, Run, "wide");

  std::string Dir =
      (std::filesystem::temp_directory_path() / "fpint_stats_test").string();
  std::string Err;
  ASSERT_TRUE(Reg.writeReport(Dir, "unit", &Err)) << Err;
  std::ifstream In(Dir + "/unit.json");
  ASSERT_TRUE(In.good());
  std::stringstream SS;
  SS << In.rdbuf();
  json::Value Doc;
  ASSERT_TRUE(json::Value::parse(SS.str(), Doc, &Err)) << Err;
  EXPECT_EQ(Doc.dump() + "\n", SS.str());
  std::filesystem::remove_all(Dir);
}

TEST(Report, RunIdsDistinguishOtherwiseIdenticalLabels) {
  PipelineConfig Cfg;
  MachineConfig WithFpa = MachineConfig::fourWay();
  MachineConfig Conventional = WithFpa;
  Conventional.FpaEnabled = false; // Same display name "4-way".
  EXPECT_NE(stats::runId("w", Cfg, WithFpa),
            stats::runId("w", Cfg, Conventional));
  PipelineConfig OtherCosts = Cfg;
  OtherCosts.Costs.CopyOverhead = 6.0;
  EXPECT_NE(stats::runId("w", Cfg, WithFpa),
            stats::runId("w", OtherCosts, WithFpa));
}

//===----------------------------------------------------------------------===//
// The regression differ.
//===----------------------------------------------------------------------===//

namespace {

json::Value makeReport(const PipelineRun &Run) {
  stats::StatsRegistry Reg;
  fillRegistry(Reg, Run, "wide");
  return Reg.reportJson("diff_test");
}

/// Scales the first run's cycle count by \p Factor (and IPC inversely).
void perturbCycles(json::Value &Doc, double Factor) {
  // Rebuild the runs array with a modified first element.
  const json::Value *Runs = Doc.find("runs");
  json::Value NewRuns = json::Value::array();
  for (size_t I = 0; I < Runs->size(); ++I) {
    json::Value Run = (*Runs)[I];
    if (I == 0) {
      json::Value *Stats = const_cast<json::Value *>(Run.find("stats"));
      double Cycles = Stats->numberOr("cycles", 0);
      double Ipc = Stats->numberOr("ipc", 0);
      Stats->set("cycles",
                 static_cast<int64_t>(Cycles * Factor));
      Stats->set("ipc", Ipc / Factor);
    }
    NewRuns.push(std::move(Run));
  }
  Doc.set("runs", std::move(NewRuns));
}

} // namespace

TEST(Report, DiffPassesOnIdenticalTrees) {
  PipelineRun Run = compileSrc(wideKernel(), partition::Scheme::None);
  json::Value A = makeReport(Run);
  json::Value B = makeReport(Run);
  EXPECT_EQ(A.dump(), B.dump()); // Reports themselves are deterministic.
  stats::DiffResult R = stats::diffReports(A, B, stats::DiffOptions());
  EXPECT_TRUE(R.clean());
  EXPECT_EQ(R.Regressions, 0u);
  // cycles + ipc + informational sim_wall_ms per run (2 runs), plus
  // the four informational run_cache counters.
  EXPECT_EQ(R.Deltas.size(), 10u);
  unsigned Informational = 0;
  for (const stats::MetricDelta &D : R.Deltas)
    if (D.Informational) {
      EXPECT_TRUE(D.Metric == "sim_wall_ms" || D.RunId == "run_cache")
          << D.RunId << "/" << D.Metric;
      EXPECT_FALSE(D.Regression); // Info metrics never gate.
      ++Informational;
    }
  EXPECT_EQ(Informational, 6u);
}

TEST(Report, DiffFlagsInjectedRegression) {
  PipelineRun Run = compileSrc(wideKernel(), partition::Scheme::None);
  json::Value Base = makeReport(Run);
  json::Value Cur = makeReport(Run);
  perturbCycles(Cur, 1.10); // 10% more cycles, 10% less IPC.
  stats::DiffOptions Opts;
  Opts.TolerancePct = 2.0;
  stats::DiffResult R = stats::diffReports(Base, Cur, Opts);
  EXPECT_EQ(R.Regressions, 2u); // cycles up AND ipc down on run 0.
  EXPECT_FALSE(R.clean());

  // An improvement of the same size is not a regression.
  json::Value Faster = makeReport(Run);
  perturbCycles(Faster, 0.90);
  stats::DiffResult R2 = stats::diffReports(Base, Faster, Opts);
  EXPECT_EQ(R2.Regressions, 0u);
  EXPECT_TRUE(R2.clean());
}

TEST(Report, DiffReportsMissingRunsAsProblems) {
  PipelineRun Run = compileSrc(wideKernel(), partition::Scheme::None);
  json::Value Base = makeReport(Run);
  json::Value Cur = makeReport(Run);
  json::Value Empty = json::Value::array();
  Cur.set("runs", std::move(Empty));
  stats::DiffResult R = stats::diffReports(Base, Cur, stats::DiffOptions());
  EXPECT_EQ(R.Problems.size(), 2u);
  EXPECT_FALSE(R.clean());
  EXPECT_EQ(R.Regressions, 0u);
}
