//===- tests/RunCacheTest.cpp - core::RunCache + bench::runMatrix ---------===//

#include "bench/BenchCommon.h"
#include "core/RunCache.h"
#include "sir/Parser.h"
#include "timing/Simulator.h"

#include <gtest/gtest.h>

using namespace fpint;
using core::PipelineConfig;
using core::RunCache;

namespace {

const char *SmallKernel = R"(
global acc 1

func main(%n) {
entry:
  li %i, 0
loop:
  lw %a, acc
  xor %b, %a, %i
  sll %c, %b, 1
  add %d, %c, %a
  sw %d, acc
  addi %i, %i, 1
  slt %t, %i, %n
  bne %t, %zero, loop
  lw %r, acc
  out %r
  ret
}
)";

std::unique_ptr<sir::Module> parseOrDie(const char *Src) {
  sir::ParseResult PR = sir::parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error;
  return std::move(PR.M);
}

PipelineConfig kernelConfig(partition::Scheme S) {
  PipelineConfig Cfg;
  Cfg.Scheme = S;
  Cfg.TrainArgs = {20};
  Cfg.RefArgs = {100};
  return Cfg;
}

} // namespace

TEST(RunCache, HitReturnsIdenticalRun) {
  auto M = parseOrDie(SmallKernel);
  RunCache Cache;
  auto Cfg = kernelConfig(partition::Scheme::Advanced);
  RunCache::RunPtr A = Cache.compile(*M, "kernel", Cfg);
  RunCache::RunPtr B = Cache.compile(*M, "kernel", Cfg);
  ASSERT_TRUE(A->ok());
  // A hit is the very same immutable run object, not a recompilation.
  EXPECT_EQ(A.get(), B.get());
  EXPECT_EQ(Cache.stats().CompileMisses, 1u);
  EXPECT_EQ(Cache.stats().CompileHits, 1u);
}

TEST(RunCache, DifferingCostParamsMiss) {
  auto M = parseOrDie(SmallKernel);
  RunCache Cache;
  auto Cfg = kernelConfig(partition::Scheme::Advanced);
  RunCache::RunPtr A = Cache.compile(*M, "kernel", Cfg);
  PipelineConfig Other = Cfg;
  Other.Costs.CopyOverhead = 5.5;
  RunCache::RunPtr B = Cache.compile(*M, "kernel", Other);
  EXPECT_NE(A.get(), B.get());
  EXPECT_EQ(Cache.stats().CompileMisses, 2u);
  EXPECT_NE(RunCache::runKey("kernel", Cfg),
            RunCache::runKey("kernel", Other));
  // The key covers every config field, not just costs.
  PipelineConfig Fp = Cfg;
  Fp.EnableFpArgPassing = true;
  EXPECT_NE(RunCache::runKey("kernel", Cfg), RunCache::runKey("kernel", Fp));
}

TEST(RunCache, SimulateMemoizesPerMachine) {
  auto M = parseOrDie(SmallKernel);
  RunCache Cache;
  RunCache::RunPtr Run =
      Cache.compile(*M, "kernel", kernelConfig(partition::Scheme::Advanced));
  ASSERT_TRUE(Run->ok());
  timing::MachineConfig Four = timing::MachineConfig::fourWay();
  timing::SimStats S1 = Cache.simulate(Run, Four);
  timing::SimStats S2 = Cache.simulate(Run, Four);
  EXPECT_EQ(S1.Cycles, S2.Cycles);
  EXPECT_EQ(Cache.stats().SimMisses, 1u);
  EXPECT_EQ(Cache.stats().SimHits, 1u);
  // A different machine is a different cell...
  timing::SimStats S8 = Cache.simulate(Run, timing::MachineConfig::eightWay());
  EXPECT_EQ(Cache.stats().SimMisses, 2u);
  EXPECT_LE(S8.Cycles, S1.Cycles);
  // ...but the functional VM traced the module exactly once for all
  // three simulations (the trace-reuse invariant).
  EXPECT_EQ(Run->Trace->Captures, 1u);
}

TEST(RunCache, TraceReplayMatchesDirectSimulation) {
  auto M = parseOrDie(SmallKernel);
  PipelineConfig Cfg = kernelConfig(partition::Scheme::Advanced);
  core::PipelineRun Run = core::compileAndMeasure(*M, Cfg);
  ASSERT_TRUE(Run.ok());
  timing::MachineConfig Four = timing::MachineConfig::fourWay();
  // Reference: the pre-cache serial path (fresh VM trace every time).
  timing::SimStats Direct =
      timing::simulateModule(*Run.Compiled, Run.Alloc, Four, Cfg.RefArgs);
  timing::SimStats Replayed = core::simulate(Run, Four);
  EXPECT_EQ(Direct.Cycles, Replayed.Cycles);
  EXPECT_EQ(Direct.Instructions, Replayed.Instructions);
  EXPECT_EQ(Direct.Mispredicts, Replayed.Mispredicts);
  EXPECT_EQ(Direct.DCacheMisses, Replayed.DCacheMisses);
  EXPECT_EQ(Direct.ICacheMisses, Replayed.ICacheMisses);
  EXPECT_EQ(Direct.IntIssued, Replayed.IntIssued);
  EXPECT_EQ(Direct.FpIssued, Replayed.FpIssued);
}

TEST(RunMatrix, ParallelOutputEqualsSerialReference) {
  // Two workloads x three schemes through the parallel matrix runner
  // must render exactly the table a serial evaluation produces.
  std::vector<workloads::Workload> Ws;
  Ws.push_back(workloads::workloadByName("compress"));
  Ws.push_back(workloads::workloadByName("li"));
  const partition::Scheme Schemes[] = {partition::Scheme::None,
                                       partition::Scheme::Basic,
                                       partition::Scheme::Advanced};
  timing::MachineConfig Four = timing::MachineConfig::fourWay();

  // Serial reference, via the uncached, unpooled primitives.
  Table Serial({"benchmark", "scheme", "offload", "cycles"});
  for (const workloads::Workload &W : Ws) {
    for (partition::Scheme S : Schemes) {
      PipelineConfig Cfg;
      Cfg.Scheme = S;
      Cfg.TrainArgs = W.TrainArgs;
      Cfg.RefArgs = W.RefArgs;
      core::PipelineRun Run = core::compileAndMeasure(*W.M, Cfg);
      ASSERT_TRUE(Run.ok());
      timing::SimStats Stats =
          timing::simulateModule(*Run.Compiled, Run.Alloc, Four, W.RefArgs);
      Serial.addRow({W.Name, partition::schemeName(S),
                     Table::pct(Run.Stats.fpaFraction()),
                     Table::num(Stats.Cycles)});
    }
  }

  Table Parallel({"benchmark", "scheme", "offload", "cycles"});
  bench::runMatrix(Ws, Parallel, [&](const workloads::Workload &W) {
    bench::MatrixRows Rows;
    for (partition::Scheme S : Schemes) {
      bench::RunPtr Run = bench::compileWorkload(W, S);
      timing::SimStats Stats = bench::simulateRun(Run, Four);
      Rows.push_back({W.Name, partition::schemeName(S),
                      Table::pct(Run->Stats.fpaFraction()),
                      Table::num(Stats.Cycles)});
    }
    return Rows;
  });

  EXPECT_EQ(Parallel.numRows(), 6u);
  EXPECT_EQ(Parallel.toString(), Serial.toString());
}

TEST(RunMatrix, FailedCellDoesNotKillTheMatrix) {
  std::vector<std::string> Items = {"good", "bad", "also-good"};
  Table T({"item"});
  bench::runMatrix(Items, T, [](const std::string &I) {
    if (I == "bad")
      throw bench::CompileError("synthetic failure for " + I);
    return bench::MatrixRows{{I}};
  });
  // The bad cell is skipped with a report; the others still land, in
  // order.
  ASSERT_EQ(T.numRows(), 2u);
  std::string Rendered = T.toString();
  EXPECT_NE(Rendered.find("good"), std::string::npos);
  EXPECT_NE(Rendered.find("also-good"), std::string::npos);
}
