//===- tests/PassManagerTest.cpp - Pass framework tests -------------------===//
//
// Covers the pass-manager pipeline: pipeline-text parsing and
// round-tripping, analysis-manager caching / preserved-set /
// dependency invalidation, verify-each-pass attribution, the opt
// fixpoint cap telemetry, and -- most importantly -- that the default
// pipeline compiles byte-identical code to the historical hard-coded
// flow.

#include "core/PassManager.h"
#include "core/Pipeline.h"
#include "core/RunCache.h"
#include "opt/Passes.h"
#include "regalloc/Liveness.h"
#include "regalloc/RegAlloc.h"
#include "sir/Parser.h"
#include "sir/Printer.h"
#include "vm/VM.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace fpint;
using namespace fpint::core;

namespace {

std::unique_ptr<sir::Module> parse(const char *Src) {
  sir::ParseResult PR = sir::parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error;
  return std::move(PR.M);
}

/// RAII environment variable setter.
struct ScopedEnv {
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    setenv(Name, Value, 1);
  }
  ~ScopedEnv() { unsetenv(Name); }
  const char *Name;
};

//===----------------------------------------------------------------------===//
// Pipeline text.
//===----------------------------------------------------------------------===//

TEST(PipelineText, DefaultRoundTrips) {
  PassManager PM;
  std::string Error;
  ASSERT_TRUE(PM.parse(defaultPipelineText(), Error)) << Error;
  EXPECT_EQ(PM.text(), defaultPipelineText());
}

TEST(PipelineText, WhitespaceAndFixpointRoundTrip) {
  PassManager PM;
  std::string Error;
  ASSERT_TRUE(PM.parse("  fixpoint( copy-prop ,dce ) , profile,  "
                       "partition-basic ",
                       Error))
      << Error;
  EXPECT_EQ(PM.text(), "fixpoint(copy-prop,dce),profile,partition-basic");

  // The round-tripped text parses back to the same shape.
  PassManager PM2;
  ASSERT_TRUE(PM2.parse(PM.text(), Error)) << Error;
  EXPECT_EQ(PM2.text(), PM.text());
}

TEST(PipelineText, RejectsUnknownAndMalformed) {
  std::vector<std::unique_ptr<ModulePass>> Out;
  std::string Error;
  EXPECT_FALSE(parsePipeline("opt,unheard-of-pass", Out, Error));
  EXPECT_NE(Error.find("unheard-of-pass"), std::string::npos) << Error;

  EXPECT_FALSE(parsePipeline("", Out, Error));
  EXPECT_FALSE(parsePipeline("opt,,dce", Out, Error));
  EXPECT_FALSE(parsePipeline("fixpoint(dce", Out, Error));
  EXPECT_FALSE(parsePipeline("dce)", Out, Error));
}

TEST(PipelineText, EffectiveTextPrecedence) {
  PipelineConfig Config;
  EXPECT_EQ(effectivePipelineText(Config), defaultPipelineText());
  {
    ScopedEnv Env("FPINT_PASSES", "opt,profile,partition");
    EXPECT_EQ(effectivePipelineText(Config), "opt,profile,partition");
    Config.Passes = "profile,regalloc";
    EXPECT_EQ(effectivePipelineText(Config), "profile,regalloc");
  }
}

TEST(PipelineText, RunCacheKeyStableForDefault) {
  PipelineConfig Config;
  const std::string Legacy = RunCache::runKey("w", Config);
  // An empty override must not perturb historical keys (golden run ids
  // are derived from them); a real override must key separately.
  EXPECT_EQ(Legacy.find("opt,"), std::string::npos);
  Config.Passes = "profile,partition,regalloc";
  const std::string Custom = RunCache::runKey("w", Config);
  EXPECT_NE(Legacy, Custom);
  EXPECT_NE(Custom.find("profile,partition,regalloc"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Analysis manager.
//===----------------------------------------------------------------------===//

TEST(AnalysisManagerTest, CachesAndCountsHits) {
  auto M = parse(fixtures::IntVectorSum);
  M->renumber();
  sir::Function &F = **M->functions().begin();

  analysis::AnalysisManager AM;
  const analysis::CFG &C1 = AM.getResult<analysis::CFGAnalysis>(F);
  const analysis::CFG &C2 = AM.getResult<analysis::CFGAnalysis>(F);
  EXPECT_EQ(&C1, &C2);
  EXPECT_EQ(AM.counters().Misses, 1u);
  EXPECT_EQ(AM.counters().Hits, 1u);

  // RDG pulls CFG (hit) and ReachingDefs (miss); the nested
  // ReachingDefs compute consults the cached CFG again (another hit).
  AM.getResult<analysis::RDGAnalysis>(F);
  EXPECT_EQ(AM.counters().Misses, 3u); // rdg + reaching-defs.
  EXPECT_EQ(AM.counters().Hits, 3u);

  // A later ReachingDefs request is served from cache.
  AM.getResult<analysis::ReachingDefsAnalysis>(F);
  EXPECT_EQ(AM.counters().Hits, 4u);

  const auto &ByName = AM.countersByAnalysis();
  EXPECT_EQ(ByName.at("cfg").Misses, 1u);
  EXPECT_EQ(ByName.at("rdg").Misses, 1u);
}

TEST(AnalysisManagerTest, InvalidateFunctionForcesRecompute) {
  auto M = parse(fixtures::IntVectorSum);
  M->renumber();
  sir::Function &F = **M->functions().begin();

  analysis::AnalysisManager AM;
  AM.getResult<analysis::CFGAnalysis>(F);
  AM.invalidateFunction(F);
  EXPECT_EQ(AM.counters().Invalidations, 1u);
  AM.getResult<analysis::CFGAnalysis>(F);
  EXPECT_EQ(AM.counters().Misses, 2u);
}

TEST(AnalysisManagerTest, PreservedSetHonored) {
  auto M = parse(fixtures::IntVectorSum);
  M->renumber();
  sir::Function &F = **M->functions().begin();

  analysis::AnalysisManager AM;
  AM.getResult<analysis::CFGAnalysis>(F);

  // Preserving everything keeps the entry.
  AM.invalidate(analysis::PreservedAnalyses::all());
  AM.getResult<analysis::CFGAnalysis>(F);
  EXPECT_EQ(AM.counters().Hits, 1u);

  // An explicit preserve of CFG keeps it across a none-default set.
  analysis::PreservedAnalyses KeepCfg;
  KeepCfg.preserve<analysis::CFGAnalysis>();
  AM.invalidate(KeepCfg);
  AM.getResult<analysis::CFGAnalysis>(F);
  EXPECT_EQ(AM.counters().Hits, 2u);

  // Preserving nothing drops it.
  AM.invalidate(analysis::PreservedAnalyses::none());
  AM.getResult<analysis::CFGAnalysis>(F);
  EXPECT_EQ(AM.counters().Misses, 2u);
}

TEST(AnalysisManagerTest, DependentsInvalidatedTransitively) {
  auto M = parse(fixtures::InvalidateForCall);
  M->renumber();
  sir::Function *F = M->functionByName("main");
  ASSERT_NE(F, nullptr);

  analysis::AnalysisManager AM;
  AM.getResult<analysis::RDGAnalysis>(*F); // Computes cfg + rd + rdg.

  // A pass claims it preserved the RDG but not the CFG it was built
  // from: the manager must drop the RDG anyway (its pointers reach
  // into CFG-derived state).
  analysis::PreservedAnalyses KeepRdg;
  KeepRdg.preserve<analysis::RDGAnalysis>();
  AM.invalidate(KeepRdg);

  const uint64_t MissesBefore = AM.counters().Misses;
  AM.getResult<analysis::RDGAnalysis>(*F);
  EXPECT_GT(AM.counters().Misses, MissesBefore)
      << "rdg survived invalidation of its cfg dependency";
}

TEST(AnalysisManagerTest, LivenessWrapperSharesCfg) {
  auto M = parse(fixtures::IntVectorSum);
  M->renumber();
  sir::Function &F = **M->functions().begin();

  analysis::AnalysisManager AM;
  AM.getResult<analysis::CFGAnalysis>(F);
  AM.getResult<regalloc::LivenessAnalysis>(F);
  EXPECT_EQ(AM.counters().Hits, 1u); // Liveness consulted the cached CFG.
  EXPECT_EQ(AM.countersByAnalysis().at("liveness").Misses, 1u);
}

//===----------------------------------------------------------------------===//
// Default pipeline == legacy flow (byte-identical compiled IR).
//===----------------------------------------------------------------------===//

/// Hand-rolled replica of the pre-pass-manager compile sequence.
std::string legacyCompile(const sir::Module &Original,
                          const PipelineConfig &Config) {
  std::unique_ptr<sir::Module> M = Original.clone();
  if (Config.RunOptimizations)
    opt::optimizeModule(*M);
  vm::VM::Options ProfOpts;
  ProfOpts.CollectProfile = true;
  vm::VM Trainer(*M, ProfOpts);
  Trainer.run(Config.TrainArgs);
  partition::ModuleRewrite RW = partition::partitionModule(
      *M, Config.Scheme, &Trainer.profile(), Config.Costs);
  if (Config.EnableFpArgPassing &&
      Config.Scheme == partition::Scheme::Advanced)
    partition::passArgsInFpRegisters(*M, RW);
  if (Config.RunRegisterAllocation)
    regalloc::allocateModule(*M);
  return sir::toString(*M);
}

TEST(PassPipeline, DefaultMatchesLegacyFlow) {
  const char *Sources[] = {fixtures::IntVectorSum,
                           fixtures::InvalidateForCall,
                           fixtures::MemoryFreeRand};
  const partition::Scheme Schemes[] = {partition::Scheme::None,
                                       partition::Scheme::Basic,
                                       partition::Scheme::Advanced};
  for (const char *Src : Sources) {
    auto M = parse(Src);
    for (partition::Scheme S : Schemes) {
      for (bool FpArgs : {false, true}) {
        PipelineConfig Config;
        Config.Scheme = S;
        Config.EnableFpArgPassing = FpArgs;
        PipelineRun Run = compileAndMeasure(*M, Config);
        ASSERT_TRUE(Run.Errors.empty())
            << Run.Errors.front() << " scheme " << static_cast<int>(S);
        EXPECT_EQ(sir::toString(*Run.Compiled), legacyCompile(*M, Config))
            << "scheme " << static_cast<int>(S) << " fpargs " << FpArgs;
      }
    }
  }
}

TEST(PassPipeline, ExplicitDefaultTextMatchesImplicit) {
  auto M = parse(fixtures::InvalidateForCall);
  PipelineConfig Implicit;
  PipelineRun A = compileAndMeasure(*M, Implicit);
  PipelineConfig Explicit;
  Explicit.Passes = defaultPipelineText();
  PipelineRun B = compileAndMeasure(*M, Explicit);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(sir::toString(*A.Compiled), sir::toString(*B.Compiled));
}

TEST(PassPipeline, EnvOverrideIsHonored) {
  auto M = parse(fixtures::MemoryFreeRand);
  ScopedEnv Env("FPINT_PASSES", "profile,partition");
  PipelineConfig Config;
  Config.RunRegisterAllocation = false; // Text never allocates.
  PipelineRun Run = compileAndMeasure(*M, Config);
  ASSERT_TRUE(Run.ok()) << (Run.Errors.empty() ? "?" : Run.Errors[0]);
  ASSERT_EQ(Run.PassStats.size(), 2u);
  EXPECT_EQ(Run.PassStats[0].Name, "profile");
  EXPECT_EQ(Run.PassStats[1].Name, "partition");
}

TEST(PassPipeline, BadPipelineTextIsAnError) {
  auto M = parse(fixtures::MemoryFreeRand);
  PipelineConfig Config;
  Config.Passes = "opt,no-such-pass";
  PipelineRun Run = compileAndMeasure(*M, Config);
  ASSERT_FALSE(Run.ok());
  ASSERT_FALSE(Run.Errors.empty());
  EXPECT_NE(Run.Errors[0].find("pipeline:"), std::string::npos);
  EXPECT_NE(Run.Errors[0].find("no-such-pass"), std::string::npos);
}

TEST(PassPipeline, PerPassTelemetryIsRecorded) {
  auto M = parse(fixtures::InvalidateForCall);
  PipelineConfig Config; // Advanced scheme default.
  PipelineRun Run = compileAndMeasure(*M, Config);
  ASSERT_TRUE(Run.ok());
  ASSERT_EQ(Run.PassStats.size(), 5u);
  EXPECT_EQ(Run.PassStats[0].Name, "opt");
  EXPECT_EQ(Run.PassStats[2].Name, "partition");
  EXPECT_EQ(Run.PassStats[4].Name, "regalloc");
  // The partitioner rewrote at least one function and consulted
  // manager-cached analyses while doing it.
  EXPECT_GT(Run.PassStats[2].Changes, 0u);
  EXPECT_GT(Run.PassStats[2].AnalysisMisses, 0u);
  EXPECT_GT(Run.PassStats[2].AnalysisHits, 0u);
  // Regalloc shares the manager: its CFG fetch for each function it
  // lowers is a fresh miss (the IR changed), never a stale reuse.
  EXPECT_GT(Run.PassStats[4].AnalysisMisses, 0u);
}

//===----------------------------------------------------------------------===//
// Verify-each-pass attribution.
//===----------------------------------------------------------------------===//

/// Deliberately corrupts the module: empties the final block of the
/// first function, so control falls off the end ("function may fall
/// off its final block").
class CorruptingPass : public ModulePass {
public:
  std::string name() const override { return "corrupt-for-test"; }
  unsigned run(sir::Module &M, analysis::AnalysisManager &,
               PassState &) override {
    sir::Function &F = **M.functions().begin();
    F.blocks().back()->instructions().clear();
    return 1;
  }
};

TEST(VerifyEachPass, AttributesCorruptionToPass) {
  PassRegistry::global().registerPass(
      "corrupt-for-test", [] { return std::make_unique<CorruptingPass>(); });
  auto M = parse(fixtures::MemoryFreeRand);

  ScopedEnv Env("FPINT_VERIFY_EACH_PASS", "1");
  PipelineConfig Config;
  Config.Passes = "opt,corrupt-for-test,profile,partition,regalloc";
  PipelineRun Run = compileAndMeasure(*M, Config);
  ASSERT_FALSE(Run.ok());
  ASSERT_FALSE(Run.Errors.empty());
  EXPECT_NE(Run.Errors[0].find("verify after pass 'corrupt-for-test'"),
            std::string::npos)
      << Run.Errors[0];
  // The pipeline stopped at the corrupting pass: no later stages ran.
  ASSERT_EQ(Run.PassStats.size(), 2u);
  EXPECT_EQ(Run.PassStats.back().Name, "corrupt-for-test");
}

TEST(VerifyEachPass, CleanPipelineUnaffected) {
  auto M = parse(fixtures::IntVectorSum);
  ScopedEnv Env("FPINT_VERIFY_EACH_PASS", "1");
  PipelineConfig Config;
  PipelineRun Run = compileAndMeasure(*M, Config);
  EXPECT_TRUE(Run.ok()) << (Run.Errors.empty() ? "?" : Run.Errors[0]);
}

//===----------------------------------------------------------------------===//
// Fixpoint cap + telemetry.
//===----------------------------------------------------------------------===//

TEST(OptFixpoint, ReportsRoundsAndConvergence) {
  auto M = parse(fixtures::MemoryFreeRand);
  M->renumber();
  opt::OptReport R = opt::optimizeModule(*M);
  EXPECT_TRUE(R.converged());
  EXPECT_GE(R.TotalRounds, 1u);
  EXPECT_GE(R.MaxFunctionRounds, 1u);
  EXPECT_LE(R.MaxFunctionRounds, opt::OptOptions().MaxRounds);
}

/// A constant chain the optimizer has real work on: folding collapses
/// it to one li, DCE sweeps the leftovers, and a second round is
/// needed to prove the fixpoint.
const char *ConstChain = R"(
func main() {
entry:
  li %a, 6
  li %b, 7
  mul %c, %a, %b
  addi %d, %c, -2
  sll %e, %d, 1
  out %e
  ret
}
)";

TEST(OptFixpoint, CapCutsOffAndIsReported) {
  auto M = parse(ConstChain);
  M->renumber();
  opt::OptOptions Opts;
  Opts.MaxRounds = 1;
  opt::OptReport R = opt::optimizeModule(*M, Opts);
  EXPECT_EQ(R.MaxFunctionRounds, 1u);
  EXPECT_FALSE(R.converged());
  EXPECT_EQ(R.FunctionsHitCap, 1u);
}

TEST(FixpointCombinator, ConvergesAndRoundTrips) {
  auto M = parse(ConstChain);
  M->renumber();

  PassManager PM;
  std::string Error;
  ASSERT_TRUE(PM.parse("fixpoint(copy-prop,const-fold,cse,dce)", Error))
      << Error;
  EXPECT_EQ(PM.text(), "fixpoint(copy-prop,const-fold,cse,dce)");

  analysis::AnalysisManager AM;
  PassState State;
  std::vector<PassStat> Stats = PM.run(*M, AM, State);
  ASSERT_EQ(Stats.size(), 1u);
  EXPECT_GT(Stats[0].Changes, 0u);
  EXPECT_TRUE(State.Errors.empty());

  // Running the same fixpoint again finds nothing left to do.
  PassManager PM2;
  ASSERT_TRUE(PM2.parse("fixpoint(copy-prop,const-fold,cse,dce)", Error));
  std::vector<PassStat> Again = PM2.run(*M, AM, State);
  ASSERT_EQ(Again.size(), 1u);
  EXPECT_EQ(Again[0].Changes, 0u);
}

} // namespace
