//===- tests/SupportTest.cpp - RNG and table utilities --------------------===//

#include "support/Rng.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <set>

using namespace fpint;

namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, SeedsDecorrelate) {
  Rng A(1), B(2);
  unsigned Same = 0;
  for (int I = 0; I < 1000; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 5u);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 200; ++I)
    Seen.insert(R.nextBelow(4));
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(13);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng R(17);
  unsigned Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += R.chance(1, 4);
  EXPECT_GT(Hits, 2200u);
  EXPECT_LT(Hits, 2800u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng R(19);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, ReseedRestartsStream) {
  Rng R(23);
  uint64_t First = R.next();
  R.next();
  R.reseed(23);
  EXPECT_EQ(R.next(), First);
}

TEST(Table, FormatsCells) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.1234), "12.3%");
  EXPECT_EQ(Table::pct(0.5, 0), "50%");
  EXPECT_EQ(Table::num(1234567), "1234567");
}

TEST(Table, AlignsColumns) {
  Table T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer-name", "22"});
  // Render to a memstream and check alignment survived.
  char *Buf = nullptr;
  size_t Size = 0;
  FILE *Mem = open_memstream(&Buf, &Size);
  ASSERT_NE(Mem, nullptr);
  T.print(Mem);
  std::fclose(Mem);
  std::string Out(Buf, Size);
  free(Buf);
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer-name"), std::string::npos);
  EXPECT_NE(Out.find("---"), std::string::npos);
  // Both data rows start their second column at the same offset.
  size_t Row1 = Out.find("\na ");
  size_t V1 = Out.find('1', Row1);
  size_t Row2 = Out.find("\nlonger-name");
  size_t V2 = Out.find("22", Row2);
  ASSERT_NE(Row1, std::string::npos);
  ASSERT_NE(Row2, std::string::npos);
  EXPECT_EQ(V1 - Row1, V2 - Row2);
}

TEST(Table, ToleratesShortRows) {
  Table T({"a", "b", "c"});
  T.addRow({"only-one"});
  char *Buf = nullptr;
  size_t Size = 0;
  FILE *Mem = open_memstream(&Buf, &Size);
  T.print(Mem);
  std::fclose(Mem);
  std::string Out(Buf, Size);
  free(Buf);
  EXPECT_NE(Out.find("only-one"), std::string::npos);
}

} // namespace
