//===- tests/CampaignTest.cpp - Durable campaign runtime ------------------===//
//
// Part of the fpint project (PLDI 1998 idle-FP-resources reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-safety contract of src/campaign: journal round-trip and
/// torn-tail recovery, content-key stability, resume-skips-completed,
/// SIGKILL-mid-campaign resume producing byte-identical results,
/// exactly-once journaling under an injected first-attempt crash,
/// deadline exhaustion degrading to typed ERR records, and the
/// explore grid / Pareto frontier helpers.
///
//===----------------------------------------------------------------------===//

#include "campaign/Campaign.h"
#include "campaign/Explore.h"
#include "campaign/Journal.h"
#include "support/FaultInject.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

using namespace fpint;
using namespace fpint::campaign;
namespace fs = std::filesystem;

namespace {

/// A unique per-test scratch directory, removed on scope exit.
struct TempDir {
  std::string Path;
  explicit TempDir(const char *Tag) {
    Path = (fs::temp_directory_path() /
            (std::string("fpint_campaign_test_") + Tag + "_" +
             std::to_string(getpid())))
               .string();
    fs::remove_all(Path);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string journalPath() const { return Path + "/journal.wal"; }
};

json::Value record(int I) {
  json::Value R = json::Value::object();
  R.set("type", "cell");
  R.set("key", "k" + std::to_string(I));
  R.set("status", "ok");
  json::Value Result = json::Value::object();
  Result.set("value", I * I);
  R.set("result", Result);
  return R;
}

/// Appends raw bytes to the journal file (simulating a torn write).
void appendRaw(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::app);
  ASSERT_TRUE(Out.good());
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

std::string framed(const std::string &Body) {
  uint32_t Len = static_cast<uint32_t>(Body.size());
  std::string Frame;
  Frame.push_back(static_cast<char>(Len));
  Frame.push_back(static_cast<char>(Len >> 8));
  Frame.push_back(static_cast<char>(Len >> 16));
  Frame.push_back(static_cast<char>(Len >> 24));
  return Frame + Body;
}

std::vector<json::Value> replay(Journal &J, const std::string &Path,
                                Journal::RecoveryInfo &Info) {
  std::vector<json::Value> Records;
  std::string Err;
  EXPECT_TRUE(J.open(
      Path, [&](const json::Value &R) { Records.push_back(R); }, Info, &Err))
      << Err;
  return Records;
}

/// Standard cells k0..k(N-1) with display labels.
std::vector<Cell> makeCells(int N) {
  std::vector<Cell> Cells;
  for (int I = 0; I < N; ++I)
    Cells.push_back({"k" + std::to_string(I), "cell" + std::to_string(I)});
  return Cells;
}

Options inProcessOptions(const std::string &Dir, const std::string &Key) {
  Options O;
  O.Dir = Dir;
  O.CampaignKey = Key;
  O.Retries = 0;
  O.BackoffMs = 0;
  O.Jobs = 1;
  O.Sandbox = false;
  return O;
}

/// Deterministic cell document for the resume tests.
json::Value squareDoc(const Cell &C) {
  json::Value Doc = json::Value::object();
  int I = std::atoi(C.Key.c_str() + 1);
  Doc.set("value", I * I);
  Doc.set("label", C.Label);
  return Doc;
}

/// Canonical dump of every outcome, in input-cell order -- the
/// byte-identity probe used by the kill/resume tests.
std::string outcomesDump(const std::vector<CellOutcome> &Outcomes) {
  std::string Text;
  for (const CellOutcome &Out : Outcomes) {
    Text += Out.ok() ? Out.Result.dump() : ("ERR:" + Out.ErrorKind);
    Text += "\n";
  }
  return Text;
}

//===----------------------------------------------------------------------===//
// Journal
//===----------------------------------------------------------------------===//

TEST(Journal, RoundTripsRecords) {
  TempDir Dir("roundtrip");
  {
    Journal J;
    Journal::RecoveryInfo Info;
    std::vector<json::Value> Records = replay(J, Dir.journalPath(), Info);
    EXPECT_FALSE(Info.Existed);
    EXPECT_TRUE(Records.empty());
    std::string Err;
    for (int I = 0; I < 3; ++I)
      ASSERT_TRUE(J.append(record(I), &Err)) << Err;
  }
  Journal J;
  Journal::RecoveryInfo Info;
  std::vector<json::Value> Records = replay(J, Dir.journalPath(), Info);
  EXPECT_TRUE(Info.Existed);
  EXPECT_EQ(Info.Records, 3u);
  EXPECT_EQ(Info.TruncatedBytes, 0u);
  ASSERT_EQ(Records.size(), 3u);
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(Records[I].dump(), record(I).dump());
}

TEST(Journal, TruncatesTornLengthPrefix) {
  TempDir Dir("torn_prefix");
  {
    Journal J;
    Journal::RecoveryInfo Info;
    replay(J, Dir.journalPath(), Info);
    std::string Err;
    ASSERT_TRUE(J.append(record(0), &Err)) << Err;
  }
  appendRaw(Dir.journalPath(), std::string("\x07\x00", 2)); // Short prefix.
  const auto SizeBefore = fs::file_size(Dir.journalPath());

  Journal J;
  Journal::RecoveryInfo Info;
  std::vector<json::Value> Records = replay(J, Dir.journalPath(), Info);
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_EQ(Info.TruncatedBytes, 2u);
  EXPECT_EQ(fs::file_size(Dir.journalPath()), SizeBefore - 2);

  // The journal is usable after recovery: appends land after the
  // truncation point and replay cleanly.
  std::string Err;
  ASSERT_TRUE(J.append(record(1), &Err)) << Err;
  Journal J2;
  Journal::RecoveryInfo Info2;
  EXPECT_EQ(replay(J2, Dir.journalPath(), Info2).size(), 2u);
  EXPECT_EQ(Info2.TruncatedBytes, 0u);
}

TEST(Journal, TruncatesBodyShorterThanLength) {
  TempDir Dir("torn_body");
  {
    Journal J;
    Journal::RecoveryInfo Info;
    replay(J, Dir.journalPath(), Info);
    std::string Err;
    ASSERT_TRUE(J.append(record(0), &Err)) << Err;
  }
  // Length says 100 bytes; only 10 follow (fsync raced the crash).
  appendRaw(Dir.journalPath(), std::string("\x64\x00\x00\x00", 4) +
                                   "{\"type\":\"c");
  Journal J;
  Journal::RecoveryInfo Info;
  EXPECT_EQ(replay(J, Dir.journalPath(), Info).size(), 1u);
  EXPECT_EQ(Info.TruncatedBytes, 14u);
}

TEST(Journal, TruncatesUnparseableTail) {
  TempDir Dir("torn_json");
  {
    Journal J;
    Journal::RecoveryInfo Info;
    replay(J, Dir.journalPath(), Info);
    std::string Err;
    ASSERT_TRUE(J.append(record(0), &Err)) << Err;
  }
  appendRaw(Dir.journalPath(), framed("this is not json"));
  Journal J;
  Journal::RecoveryInfo Info;
  EXPECT_EQ(replay(J, Dir.journalPath(), Info).size(), 1u);
  EXPECT_GT(Info.TruncatedBytes, 0u);
}

TEST(Journal, TruncatesAbsurdLength) {
  TempDir Dir("torn_len");
  {
    Journal J;
    Journal::RecoveryInfo Info;
    replay(J, Dir.journalPath(), Info);
    std::string Err;
    ASSERT_TRUE(J.append(record(0), &Err)) << Err;
  }
  // A length prefix beyond MaxRecordBytes is corruption, not a record.
  appendRaw(Dir.journalPath(), std::string("\xff\xff\xff\xff", 4) + "junk");
  Journal J;
  Journal::RecoveryInfo Info;
  EXPECT_EQ(replay(J, Dir.journalPath(), Info).size(), 1u);
  EXPECT_EQ(Info.TruncatedBytes, 8u);
}

//===----------------------------------------------------------------------===//
// Content keys
//===----------------------------------------------------------------------===//

TEST(CellKey, IsStableAcrossProcesses) {
  // Golden value: chained FNV-1a with 0x1f separators, folded with
  // JournalSchema. If this changes, every persisted journal is
  // invalidated -- bump JournalSchema instead of silently re-keying.
  EXPECT_EQ(cellKey("compress", "pipe", "mach"), "620cdbd2c7389c67");
}

TEST(CellKey, IsSensitiveToEveryComponent) {
  const std::string Base = cellKey("w", "p", "m");
  EXPECT_EQ(Base.size(), 16u);
  EXPECT_NE(cellKey("w2", "p", "m"), Base);
  EXPECT_NE(cellKey("w", "p2", "m"), Base);
  EXPECT_NE(cellKey("w", "p", "m2"), Base);
  // Separators prevent concatenation collisions.
  EXPECT_NE(cellKey("wp", "", "m"), cellKey("w", "p", "m"));
}

//===----------------------------------------------------------------------===//
// Runner
//===----------------------------------------------------------------------===//

TEST(Runner, ExecutesAllCellsThenResumesAll) {
  TempDir Dir("resume_all");
  std::atomic<int> Calls{0};
  auto Fn = [&Calls](const Cell &C) {
    ++Calls;
    return squareDoc(C);
  };

  Runner R1(inProcessOptions(Dir.Path, "key1"));
  std::vector<CellOutcome> First = R1.run(makeCells(4), Fn);
  EXPECT_EQ(Calls.load(), 4);
  EXPECT_EQ(R1.summary().Executed, 4u);
  EXPECT_EQ(R1.summary().Resumed, 0u);
  EXPECT_EQ(R1.summary().Completed, 4u);

  // A second campaign over the same cells replays everything from the
  // journal: the cell function never runs again, and every outcome is
  // byte-identical to the first run's.
  Runner R2(inProcessOptions(Dir.Path, "key1"));
  std::vector<CellOutcome> Second = R2.run(makeCells(4), Fn);
  EXPECT_EQ(Calls.load(), 4);
  EXPECT_EQ(R2.summary().Resumed, 4u);
  EXPECT_EQ(R2.summary().Executed, 0u);
  EXPECT_EQ(outcomesDump(First), outcomesDump(Second));
  for (const CellOutcome &Out : Second)
    EXPECT_TRUE(Out.Resumed);
}

TEST(Runner, DiscardsJournalOfDifferentCampaign) {
  TempDir Dir("discard");
  auto Fn = [](const Cell &C) { return squareDoc(C); };

  Runner R1(inProcessOptions(Dir.Path, "campaign-A"));
  R1.run(makeCells(2), Fn);

  // Same state dir, different campaign identity: the journal is reset,
  // nothing resumes, and the summary says so.
  Runner R2(inProcessOptions(Dir.Path, "campaign-B"));
  R2.run(makeCells(2), Fn);
  EXPECT_TRUE(R2.summary().JournalDiscarded);
  EXPECT_EQ(R2.summary().Resumed, 0u);
  EXPECT_EQ(R2.summary().Executed, 2u);
}

TEST(Runner, SigkillMidCampaignResumesByteIdentical) {
  TempDir Killed("kill_resume");
  TempDir Clean("kill_clean");

  // Phase 1: a forked harness runs the campaign in-process and dies on
  // SIGKILL after journaling exactly 3 of 6 cells -- the uncontained
  // harness-death scenario the journal exists for.
  support::SandboxLimits Limits;
  Limits.WallMs = 30000;
  Limits.KillGraceMs = 500;
  std::string Dir = Killed.Path;
  support::TaskResult Death = support::Subprocess::run(
      [&Dir](int) {
        Options O;
        O.Dir = Dir;
        O.CampaignKey = "kill-test";
        O.Retries = 0;
        O.Jobs = 1; // Pool threads do not survive the fork.
        O.Sandbox = false;
        int Done = 0;
        Runner R(O);
        R.run(makeCells(6), [&Done](const Cell &C) {
          if (Done == 3)
            raise(SIGKILL);
          ++Done;
          return squareDoc(C);
        });
        return 0; // Unreachable.
      },
      Limits);
  ASSERT_EQ(Death.St, support::TaskResult::Status::Signaled);
  ASSERT_EQ(Death.TermSignal, SIGKILL);

  // Phase 2: resume. Only the 3 unfinished cells execute.
  std::atomic<int> ResumeCalls{0};
  Runner Resumed(inProcessOptions(Killed.Path, "kill-test"));
  std::vector<CellOutcome> ResumedOutcomes =
      Resumed.run(makeCells(6), [&ResumeCalls](const Cell &C) {
        ++ResumeCalls;
        return squareDoc(C);
      });
  EXPECT_EQ(ResumeCalls.load(), 3);
  EXPECT_EQ(Resumed.summary().Resumed, 3u);
  EXPECT_EQ(Resumed.summary().Executed, 3u);
  EXPECT_EQ(Resumed.summary().Completed, 6u);

  // The resumed campaign's results are byte-identical to a never-
  // interrupted campaign's.
  Runner Uninterrupted(inProcessOptions(Clean.Path, "kill-test"));
  std::vector<CellOutcome> CleanOutcomes =
      Uninterrupted.run(makeCells(6), [](const Cell &C) {
        return squareDoc(C);
      });
  EXPECT_EQ(outcomesDump(ResumedOutcomes), outcomesDump(CleanOutcomes));
}

TEST(Runner, InjectedFirstAttemptCrashIsAbsorbedByRetry) {
  TempDir Dir("crash_once");
  // ":once" fires on attempt 1 only; the sandbox child sets its own
  // attempt number, so the retry (attempt 2) runs clean. The override
  // is inherited across fork by the cell children.
  support::fault::armForTest("crash:campaign:cell:once");

  Options O;
  O.Dir = Dir.Path;
  O.CampaignKey = "crash-once";
  O.Retries = 1;
  O.BackoffMs = 1;
  O.DeadlineMs = 20000;
  O.Jobs = 1;
  O.Sandbox = true;
  Runner R(O);
  std::vector<CellOutcome> Outcomes =
      R.run(makeCells(3), [](const Cell &C) { return squareDoc(C); });
  support::fault::armForTest(nullptr);

  EXPECT_EQ(R.summary().Completed, 3u);
  EXPECT_EQ(R.summary().Errors, 0u);
  EXPECT_EQ(R.summary().Retried, 3u);
  for (const CellOutcome &Out : Outcomes) {
    EXPECT_TRUE(Out.ok());
    EXPECT_EQ(Out.Attempts, 2u);
  }

  // Exactly-once in the journal: resuming replays one record per cell.
  Runner R2(inProcessOptions(Dir.Path, "crash-once"));
  R2.run(makeCells(3), [](const Cell &C) { return squareDoc(C); });
  EXPECT_EQ(R2.summary().Resumed, 3u);
  EXPECT_EQ(R2.summary().Executed, 0u);
}

TEST(Runner, DeadlineExhaustionDegradesToTypedErr) {
  TempDir Dir("deadline");
  Options O;
  O.Dir = Dir.Path;
  O.CampaignKey = "deadline";
  O.Retries = 1;
  O.BackoffMs = 1;
  O.DeadlineMs = 300;
  O.Jobs = 1;
  O.Sandbox = true;
  Runner R(O);
  std::vector<CellOutcome> Outcomes =
      R.run(makeCells(1), [](const Cell &) -> json::Value {
        for (;;) {
          struct timespec TS = {0, 50 * 1000 * 1000};
          nanosleep(&TS, nullptr);
        }
      });
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_FALSE(Outcomes[0].ok());
  EXPECT_EQ(Outcomes[0].ErrorKind, "timeout");
  EXPECT_EQ(Outcomes[0].Attempts, 2u); // Initial try + 1 retry, both spent.
  EXPECT_EQ(R.summary().Errors, 1u);
  EXPECT_EQ(R.summary().Completed, 0u);

  // The ERR is journaled like any completion: the campaign resumes
  // past it instead of re-hanging on every restart.
  Runner R2(inProcessOptions(Dir.Path, "deadline"));
  std::vector<CellOutcome> Resumed =
      R2.run(makeCells(1), [](const Cell &C) { return squareDoc(C); });
  EXPECT_EQ(R2.summary().Resumed, 1u);
  EXPECT_FALSE(Resumed[0].ok());
  EXPECT_EQ(Resumed[0].ErrorKind, "timeout");
}

TEST(Runner, ThrowingCellDegradesInProcess) {
  TempDir Dir("throw");
  Runner R(inProcessOptions(Dir.Path, "throw"));
  std::vector<CellOutcome> Outcomes =
      R.run(makeCells(1), [](const Cell &) -> json::Value {
        throw std::runtime_error("boom");
      });
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_FALSE(Outcomes[0].ok());
  EXPECT_EQ(Outcomes[0].ErrorKind, "exception");
  EXPECT_EQ(Outcomes[0].Error, "boom");
}

TEST(Summary, SerializesEveryCounter) {
  Summary S;
  S.Cells = 10;
  S.Completed = 8;
  S.Resumed = 3;
  S.Executed = 7;
  S.Retried = 2;
  S.Errors = 2;
  S.JournalTruncatedBytes = 17;
  S.JournalDiscarded = true;
  json::Value V = summaryToJson(S);
  EXPECT_EQ(V.numberOr("cells", 0), 10);
  EXPECT_EQ(V.numberOr("completed", 0), 8);
  EXPECT_EQ(V.numberOr("resumed", 0), 3);
  EXPECT_EQ(V.numberOr("executed", 0), 7);
  EXPECT_EQ(V.numberOr("retried", 0), 2);
  EXPECT_EQ(V.numberOr("errors", 0), 2);
  EXPECT_EQ(V.numberOr("journal_truncated_bytes", 0), 17);
  const json::Value *D = V.find("journal_discarded");
  ASSERT_NE(D, nullptr);
  EXPECT_TRUE(D->boolean());
}

TEST(PublishReport, WritesAtomicallyWithTrailingNewline) {
  TempDir Dir("publish");
  json::Value Doc = json::Value::object();
  Doc.set("hello", "world");
  std::string Path = Dir.Path + "/sub/report.json";
  std::string Err;
  ASSERT_TRUE(publishReport(Path, Doc, &Err)) << Err;

  std::ifstream In(Path, std::ios::binary);
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(Text, Doc.dump() + "\n");
  // No tmp litter left behind.
  size_t Entries = 0;
  for (const auto &Ent : fs::directory_iterator(Dir.Path + "/sub"))
    (void)Ent, ++Entries;
  EXPECT_EQ(Entries, 1u);
}

//===----------------------------------------------------------------------===//
// Explore helpers
//===----------------------------------------------------------------------===//

TEST(Explore, GridsAreDeterministicWithUniqueLabels) {
  for (const char *Name : {"smoke", "small", "full"}) {
    std::vector<MachinePoint> A = exploreGrid(Name);
    std::vector<MachinePoint> B = exploreGrid(Name);
    ASSERT_FALSE(A.empty()) << Name;
    ASSERT_EQ(A.size(), B.size());
    std::set<std::string> Labels, Keys;
    for (size_t I = 0; I < A.size(); ++I) {
      EXPECT_EQ(A[I].Label, B[I].Label);
      EXPECT_EQ(A[I].M.canonicalKey(), B[I].M.canonicalKey());
      Labels.insert(A[I].Label);
      Keys.insert(A[I].M.canonicalKey());
    }
    EXPECT_EQ(Labels.size(), A.size()) << Name << ": duplicate labels";
    EXPECT_EQ(Keys.size(), A.size()) << Name << ": duplicate machines";
  }
  EXPECT_TRUE(exploreGrid("no-such-grid").empty());
  // The grids nest by intent: smoke < small < full.
  EXPECT_LT(exploreGrid("smoke").size(), exploreGrid("small").size());
  EXPECT_LT(exploreGrid("small").size(), exploreGrid("full").size());
}

TEST(Explore, ResourceCostIsMonotoneInMajorAxes) {
  timing::MachineConfig Four = timing::MachineConfig::fourWay();
  timing::MachineConfig Eight = timing::MachineConfig::eightWay();
  EXPECT_LT(resourceCost(Four), resourceCost(Eight));

  timing::MachineConfig BiggerCache = Four;
  BiggerCache.DCache.SizeBytes *= 2;
  EXPECT_LT(resourceCost(Four), resourceCost(BiggerCache));

  timing::MachineConfig NoPredictor = Four;
  NoPredictor.Predictor = timing::PredictorKind::StaticNotTaken;
  EXPECT_LT(resourceCost(NoPredictor), resourceCost(Four));
}

TEST(Explore, ParetoFrontierMarksUndominatedPoints) {
  // (cost, value): a dominates nothing, b dominates c (same cost, more
  // value), d is the cheap end of the frontier.
  std::vector<uint64_t> Cost = {10, 20, 20, 5};
  std::vector<double> Value = {1.0, 2.0, 1.5, 0.5};
  std::vector<bool> On = paretoFrontier(Cost, Value);
  ASSERT_EQ(On.size(), 4u);
  EXPECT_TRUE(On[0]);  // Cheapest point with value 1.0.
  EXPECT_TRUE(On[1]);  // Highest value.
  EXPECT_FALSE(On[2]); // Dominated by b.
  EXPECT_TRUE(On[3]);  // Cheapest overall.

  // Duplicates do not knock each other off the frontier (neither
  // strictly dominates).
  std::vector<bool> Dup = paretoFrontier({7, 7}, {1.0, 1.0});
  EXPECT_TRUE(Dup[0]);
  EXPECT_TRUE(Dup[1]);

  EXPECT_TRUE(paretoFrontier({}, {}).empty());
}

} // namespace
