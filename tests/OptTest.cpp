//===- tests/OptTest.cpp - Machine-independent optimizer ------------------===//

#include "opt/Passes.h"
#include "sir/Parser.h"
#include "sir/Printer.h"
#include "sir/Verifier.h"
#include "support/Rng.h"
#include "vm/VM.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::opt;
using namespace fpint::sir;

namespace {

std::unique_ptr<Module> parseOrDie(const char *Src) {
  ParseResult PR = parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error << " at line " << PR.Line;
  return std::move(PR.M);
}

/// Optimizes and checks verification + output equivalence.
OptReport optimizeAndCheck(Module &M) {
  auto Before = vm::runModule(M);
  EXPECT_TRUE(Before.Ok) << Before.Error;
  OptReport R = optimizeModule(M);
  auto Errs = verify(M);
  EXPECT_TRUE(Errs.empty()) << Errs[0] << "\n" << toString(M);
  auto After = vm::runModule(M);
  EXPECT_TRUE(After.Ok) << After.Error;
  EXPECT_EQ(Before.Output, After.Output) << toString(M);
  return R;
}

TEST(Opt, FoldsConstantChains) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 6
  li %b, 7
  mul %c, %a, %b
  addi %d, %c, -2
  sll %e, %d, 1
  out %e
  ret
}
)");
  OptReport R = optimizeAndCheck(*M);
  EXPECT_GT(R.ConstantsFolded, 0u);
  // The whole chain collapses to a single li feeding out.
  const Function &F = *M->functionByName("main");
  unsigned NonLi = 0;
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() != Opcode::Li && I.op() != Opcode::Out &&
        I.op() != Opcode::Ret)
      ++NonLi;
  });
  EXPECT_EQ(NonLi, 0u) << toString(F);
  auto Run = vm::runModule(*M);
  EXPECT_EQ(Run.Output, (std::vector<int32_t>{80}));
}

TEST(Opt, AppliesAlgebraicIdentities) {
  auto M = parseOrDie(R"(
func main(%x) {
entry:
  addi %a, %x, 0
  ori %b, %a, 0
  sll %c, %b, 0
  andi %d, %c, -1
  out %d
  ret
}
)");
  auto Before = vm::runModule(*M, {1234});
  ASSERT_TRUE(Before.Ok);
  OptReport R = optimizeModule(*M);
  EXPECT_GE(R.ConstantsFolded, 4u);
  auto After = vm::runModule(*M, {1234});
  ASSERT_TRUE(After.Ok);
  EXPECT_EQ(After.Output, Before.Output);
  // After copy propagation + DCE, out reads the formal directly.
  const Function &F = *M->functionByName("main");
  EXPECT_LE(F.numInstrIds(), 3u) << toString(F);
}

TEST(Opt, PropagatesCopies) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 5
  move %b, %a
  move %c, %b
  add %d, %c, %b
  out %d
  ret
}
)");
  OptReport R = optimizeAndCheck(*M);
  EXPECT_GT(R.CopiesPropagated, 0u);
  EXPECT_GT(R.DeadInstructionsRemoved, 0u); // The moves die.
}

TEST(Opt, EliminatesCommonSubexpressions) {
  auto M = parseOrDie(R"(
global t 4 = 11 22

func main() {
entry:
  lw %a, t
  lw %b, t+4
  add %x, %a, %b
  add %y, %a, %b
  sub %z, %x, %y
  out %z
  add %w, %x, %y
  out %w
  ret
}
)");
  OptReport R = optimizeAndCheck(*M);
  EXPECT_GT(R.SubexpressionsEliminated, 0u);
  auto Run = vm::runModule(*M);
  EXPECT_EQ(Run.Output, (std::vector<int32_t>{0, 66}));
}

TEST(Opt, CseRespectsRedefinitions) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %a, 5
  li %b, 3
  add %x, %a, %b
  li %a, 100
  add %y, %a, %b
  sub %d, %y, %x
  out %d
  ret
}
)");
  optimizeAndCheck(*M);
  auto Run = vm::runModule(*M);
  // 103 - 8 = 95; a buggy CSE would produce 0.
  EXPECT_EQ(Run.Output, (std::vector<int32_t>{95}));
}

TEST(Opt, DeadCodeKeepsSideEffects) {
  auto M = parseOrDie(R"(
global g 2

func main() {
entry:
  li %dead1, 1
  li %dead2, 2
  add %dead3, %dead1, %dead2
  li %live, 7
  sw %live, g
  lw %back, g
  out %back
  ret
}
)");
  OptReport R = optimizeAndCheck(*M);
  EXPECT_EQ(R.DeadInstructionsRemoved, 3u);
  const Function &F = *M->functionByName("main");
  unsigned Stores = 0, Loads = 0;
  F.forEachInstr([&](const Instruction &I) {
    Stores += I.isStore();
    Loads += I.isLoad();
  });
  EXPECT_EQ(Stores, 1u);
  EXPECT_EQ(Loads, 1u);
}

TEST(Opt, NeverRemovesLoads) {
  // A dead load could fault; the optimizer must keep it.
  auto M = parseOrDie(R"(
global g 1 = 5

func main() {
entry:
  lw %unused, g
  li %x, 1
  out %x
  ret
}
)");
  optimizeAndCheck(*M);
  const Function &F = *M->functionByName("main");
  unsigned Loads = 0;
  F.forEachInstr([&](const Instruction &I) { Loads += I.isLoad(); });
  EXPECT_EQ(Loads, 1u);
}

TEST(Opt, ConstantsDoNotCrossBlockBoundaries) {
  // The folder is block-local by design: a join with different
  // reaching constants must not fold.
  auto M = parseOrDie(R"(
func main(%p) {
entry:
  li %v, 1
  blez %p, other
  jmp join
other:
  li %v, 2
join:
  addi %w, %v, 10
  out %w
  ret
}
)");
  auto Run1 = vm::runModule(*M, {1});
  auto Run2 = vm::runModule(*M, {-1});
  optimizeModule(*M);
  auto Run1b = vm::runModule(*M, {1});
  auto Run2b = vm::runModule(*M, {-1});
  EXPECT_EQ(Run1.Output, Run1b.Output);
  EXPECT_EQ(Run2.Output, Run2b.Output);
}

TEST(Opt, IdempotentOnWorkloads) {
  // Optimizing twice must find nothing new the second time, and never
  // change workload outputs.
  for (const std::string &Name : workloads::allWorkloadNames()) {
    workloads::Workload W = workloads::workloadByName(Name);
    auto Before = vm::runModule(*W.M, W.RefArgs);
    ASSERT_TRUE(Before.Ok) << Name;
    optimizeModule(*W.M);
    OptReport Second = optimizeModule(*W.M);
    EXPECT_EQ(Second.total(), 0u) << Name;
    auto After = vm::runModule(*W.M, W.RefArgs);
    ASSERT_TRUE(After.Ok) << Name;
    EXPECT_EQ(After.Output, Before.Output) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Property test: optimization never changes observable behaviour.
//===----------------------------------------------------------------------===//

std::string randomOptProgram(uint64_t Seed) {
  Rng R(Seed);
  std::string Src = "global arr 16 = ";
  for (int I = 0; I < 16; ++I)
    Src += std::to_string(R.nextInRange(-9, 9)) + " ";
  Src += "\nfunc main() {\nentry:\n";
  unsigned NumVals = 5;
  for (unsigned I = 0; I < NumVals; ++I)
    Src += "  li %v" + std::to_string(I) + ", " +
           std::to_string(R.nextInRange(-4, 20)) + "\n";
  Src += "  li %i, 0\n  la %p, arr\nloop:\n";
  for (unsigned S = 0; S < 10 + R.nextBelow(8); ++S) {
    unsigned A = R.nextBelow(NumVals), B = R.nextBelow(NumVals),
             D = R.nextBelow(NumVals);
    std::string SA = "%v" + std::to_string(A), SB = "%v" + std::to_string(B),
                SD = "%v" + std::to_string(D);
    switch (R.nextBelow(9)) {
    case 0:
      Src += "  add " + SD + ", " + SA + ", " + SB + "\n";
      break;
    case 1:
      Src += "  move " + SD + ", " + SA + "\n";
      break;
    case 2:
      Src += "  li " + SD + ", " + std::to_string(R.nextInRange(0, 99)) +
             "\n";
      break;
    case 3:
      Src += "  addi " + SD + ", " + SA + ", " +
             std::to_string(R.nextInRange(-2, 2)) + "\n";
      break;
    case 4:
      Src += "  add " + SD + ", " + SA + ", " + SB + "\n  add " + SD +
             ", " + SA + ", " + SB + "\n"; // CSE bait (second redefines).
      break;
    case 5:
      Src += "  mul " + SD + ", " + SA + ", " + SB + "\n  andi " + SD +
             ", " + SD + ", 255\n";
      break;
    case 6: {
      Src += "  andi %o" + std::to_string(S) + ", " + SA + ", 15\n  sll "
             "%q" + std::to_string(S) + ", %o" + std::to_string(S) +
             ", 2\n  add %e" + std::to_string(S) + ", %p, %q" +
             std::to_string(S) + "\n  lw " + SD + ", 0(%e" +
             std::to_string(S) + ")\n";
      break;
    }
    case 7: {
      Src += "  andi %so" + std::to_string(S) + ", " + SA + ", 15\n  sll "
             "%sq" + std::to_string(S) + ", %so" + std::to_string(S) +
             ", 2\n  add %se" + std::to_string(S) + ", %p, %sq" +
             std::to_string(S) + "\n  sw " + SB + ", 0(%se" +
             std::to_string(S) + ")\n";
      break;
    }
    case 8:
      Src += "  slti %c" + std::to_string(S) + ", " + SA +
             ", 10\n  beq %c" + std::to_string(S) + ", %zero, sk" +
             std::to_string(S) + "\n  xori " + SD + ", " + SD +
             ", 3\n sk" + std::to_string(S) + ":\n";
      break;
    }
  }
  Src += "  addi %i, %i, 1\n  slti %t, %i, 9\n  bne %t, %zero, loop\n";
  for (unsigned I = 0; I < NumVals; ++I)
    Src += "  out %v" + std::to_string(I) + "\n";
  Src += "  ret\n}\n";
  return Src;
}

class OptProperty : public ::testing::TestWithParam<int> {};

TEST_P(OptProperty, OptimizationPreservesBehaviour) {
  std::string Src = randomOptProgram(static_cast<uint64_t>(GetParam()) *
                                     6151);
  ParseResult PR = parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error << "\n" << Src;
  auto Before = vm::runModule(*PR.M);
  ASSERT_TRUE(Before.Ok) << Before.Error << "\n" << Src;
  OptReport R = optimizeModule(*PR.M);
  (void)R;
  auto Errs = verify(*PR.M);
  ASSERT_TRUE(Errs.empty()) << Errs[0] << "\n" << toString(*PR.M);
  auto After = vm::runModule(*PR.M);
  ASSERT_TRUE(After.Ok) << After.Error;
  ASSERT_EQ(After.Output, Before.Output)
      << "seed " << GetParam() << "\n"
      << Src << "\n==>\n"
      << toString(*PR.M);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptProperty, ::testing::Range(0, 30));

} // namespace
