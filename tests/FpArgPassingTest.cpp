//===- tests/FpArgPassingTest.cpp - Section 6.6 interprocedural extension -===//

#include "core/Pipeline.h"
#include "sir/Parser.h"
#include "sir/Printer.h"
#include "sir/Verifier.h"
#include "vm/VM.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace fpint;
using namespace fpint::core;

namespace {

// A hot FPa-computed value crosses a call boundary into a callee that
// also consumes it in FPa: without the extension this costs a
// cp_to_int at each call site plus a cp_to_fp at the callee entry.
const char *Convertible = R"(
global data 8 = 3 1 4 1 5 9 2 6
global acc 1

func fold(%v) {
entry:
  sll %a, %v, 1
  xor %b, %a, %v
  andi %c, %b, 1023
  sll %d, %c, 2
  sub %e, %d, %c
  lw %t, acc
  add %t2, %t, %e
  sw %t2, acc
  ret
}

func main() {
entry:
  li %i, 0
loop:
  sll %off, %i, 2
  la %p, data
  add %ea, %p, %off
  lw %x, 0(%ea)
  sll %h1, %x, 3
  sub %h2, %h1, %x
  xor %h3, %h2, %x
  addi %h4, %h3, 11
  sll %h5, %h4, 1
  xor %h6, %h5, %h4
  call fold(%h6)
  addi %i, %i, 1
  slti %t, %i, 8
  bne %t, %zero, loop
  lw %r, acc
  out %r
  ret
}
)";

PipelineRun runWith(const char *Src, bool Extension) {
  sir::ParseResult PR = sir::parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error;
  PipelineConfig Cfg;
  Cfg.Scheme = partition::Scheme::Advanced;
  Cfg.EnableFpArgPassing = Extension;
  PipelineRun Run = compileAndMeasure(*PR.M, Cfg);
  EXPECT_TRUE(Run.ok()) << (Run.Errors.empty() ? "output mismatch"
                                               : Run.Errors[0]);
  return Run;
}

TEST(FpArgPassing, ConvertsCopyRoundTrips) {
  PipelineRun Base = runWith(Convertible, false);
  PipelineRun Ext = runWith(Convertible, true);

  // The baseline pays call-boundary copies (if the h-chain offloaded).
  if (Base.Stats.CopyBacks == 0)
    GTEST_SKIP() << "partitioner kept the argument chain in INT";

  EXPECT_GT(Ext.FpArgs.ArgsConverted, 0u);
  EXPECT_GT(Ext.FpArgs.EntryCopiesRemoved, 0u);
  // The extension strictly reduces copy traffic.
  EXPECT_LT(Ext.Stats.CopyBacks + Ext.Stats.Copies,
            Base.Stats.CopyBacks + Base.Stats.Copies);
  // And both versions compute the same outputs as the original.
  EXPECT_TRUE(Ext.OutputsMatchOriginal);

  // The callee's formal now lives in the FP file.
  const sir::Function *Fold = Ext.Compiled->functionByName("fold");
  ASSERT_EQ(Fold->formals().size(), 1u);
  EXPECT_EQ(Fold->regClass(Fold->formals()[0]), sir::RegClass::Fp);
}

TEST(FpArgPassing, MixedCallSitesBlockConversion) {
  // A second call site passes a plain integer: the slot must stay in
  // the integer convention.
  std::string Src = std::string(Convertible);
  Src.insert(Src.find("  lw %r, acc"), "  li %plain, 5\n  call "
                                       "fold(%plain)\n");
  sir::ParseResult PR = sir::parseModule(Src);
  ASSERT_TRUE(PR.ok()) << PR.Error;
  PipelineConfig Cfg;
  Cfg.Scheme = partition::Scheme::Advanced;
  Cfg.EnableFpArgPassing = true;
  PipelineRun Run = compileAndMeasure(*PR.M, Cfg);
  ASSERT_TRUE(Run.ok()) << (Run.Errors.empty() ? "?" : Run.Errors[0]);
  EXPECT_EQ(Run.FpArgs.ArgsConverted, 0u);
  const sir::Function *Fold = Run.Compiled->functionByName("fold");
  EXPECT_EQ(Fold->regClass(Fold->formals()[0]), sir::RegClass::Int);
}

TEST(FpArgPassing, NoOpOnBasicAndConventional) {
  for (partition::Scheme S :
       {partition::Scheme::None, partition::Scheme::Basic}) {
    sir::ParseResult PR = sir::parseModule(Convertible);
    ASSERT_TRUE(PR.ok());
    PipelineConfig Cfg;
    Cfg.Scheme = S;
    Cfg.EnableFpArgPassing = true; // Ignored outside the advanced scheme.
    PipelineRun Run = compileAndMeasure(*PR.M, Cfg);
    ASSERT_TRUE(Run.ok());
    EXPECT_EQ(Run.FpArgs.ArgsConverted, 0u);
  }
}

TEST(FpArgPassing, WorksAcrossTheWorkloadSuite) {
  // The extension must never break equivalence, whatever it finds.
  for (const char *Name : {"li", "gcc", "compress"}) {
    workloads::Workload W = workloads::workloadByName(Name);
    PipelineConfig Cfg;
    Cfg.Scheme = partition::Scheme::Advanced;
    Cfg.EnableFpArgPassing = true;
    Cfg.TrainArgs = W.TrainArgs;
    Cfg.RefArgs = W.RefArgs;
    PipelineRun Run = compileAndMeasure(*W.M, Cfg);
    EXPECT_TRUE(Run.ok()) << Name << ": "
                          << (Run.Errors.empty() ? "output mismatch"
                                                 : Run.Errors[0]);
  }
}

} // namespace
