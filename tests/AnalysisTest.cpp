//===- tests/AnalysisTest.cpp - CFG, reaching defs, RDG, slices -----------===//

#include "analysis/CFG.h"
#include "analysis/ExecutionEstimate.h"
#include "analysis/RDG.h"
#include "analysis/ReachingDefs.h"
#include "sir/Parser.h"
#include "vm/VM.h"

#include "PaperExamples.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace fpint;
using namespace fpint::analysis;
using namespace fpint::sir;

namespace {

std::unique_ptr<Module> parseOrDie(const char *Src) {
  ParseResult PR = parseModule(Src);
  EXPECT_TRUE(PR.ok()) << PR.Error << " at line " << PR.Line;
  return std::move(PR.M);
}

/// Finds the unique instruction with opcode \p Op in \p F.
const Instruction *findOnly(const Function &F, Opcode Op) {
  const Instruction *Found = nullptr;
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() == Op) {
      EXPECT_EQ(Found, nullptr) << "opcode not unique in function";
      Found = &I;
    }
  });
  EXPECT_NE(Found, nullptr) << "opcode not found";
  return Found;
}

//===----------------------------------------------------------------------===//
// CFG
//===----------------------------------------------------------------------===//

TEST(CFG, LoopStructure) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %i, 0
outer:
  li %j, 0
inner:
  addi %j, %j, 1
  slti %tj, %j, 10
  bne %tj, %zero, inner
  addi %i, %i, 1
  slti %ti, %i, 10
  bne %ti, %zero, outer
  ret
}
)");
  const Function &F = *M->functionByName("main");
  CFG Cfg(F);
  // Conditional branches end blocks, so the parser introduces anonymous
  // fallthrough blocks: entry=0, outer=1, inner=2, after-inner=3 (holds
  // the outer latch), after-outer=4 (holds the ret).
  ASSERT_EQ(Cfg.numBlocks(), 5u);
  EXPECT_EQ(Cfg.loopDepth(0), 0u);
  EXPECT_EQ(Cfg.loopDepth(1), 1u);
  EXPECT_EQ(Cfg.loopDepth(2), 2u);
  EXPECT_EQ(Cfg.loopDepth(3), 1u);
  EXPECT_EQ(Cfg.loopDepth(4), 0u);
  EXPECT_TRUE(Cfg.dominates(0, 2));
  EXPECT_TRUE(Cfg.dominates(1, 2));
  EXPECT_FALSE(Cfg.dominates(2, 1));
  EXPECT_TRUE(Cfg.isBackEdge(2, 2));
  EXPECT_TRUE(Cfg.isBackEdge(3, 1));
  EXPECT_EQ(Cfg.loopHeaders().size(), 2u);
}

TEST(CFG, DiamondAndUnreachable) {
  auto M = parseOrDie(R"(
func main(%x) {
entry:
  blez %x, left
right:
  jmp join
left:
  jmp join
dead:
  jmp join
join:
  ret
}
)");
  const Function &F = *M->functionByName("main");
  CFG Cfg(F);
  // entry=0 right=1 left=2 dead=3 join=4; entry falls through to right.
  EXPECT_TRUE(Cfg.isReachable(0));
  EXPECT_TRUE(Cfg.isReachable(1));
  EXPECT_TRUE(Cfg.isReachable(2));
  EXPECT_FALSE(Cfg.isReachable(3));
  EXPECT_TRUE(Cfg.isReachable(4));
  EXPECT_EQ(Cfg.idom(4), 0u); // Join is dominated only by entry.
  EXPECT_EQ(Cfg.idom(1), 0u);
  EXPECT_EQ(Cfg.idom(2), 0u);
  // RPO starts at the entry and covers all blocks.
  EXPECT_EQ(Cfg.reversePostOrder().size(), 5u);
  EXPECT_EQ(Cfg.reversePostOrder()[0], 0u);
}

//===----------------------------------------------------------------------===//
// Reaching definitions
//===----------------------------------------------------------------------===//

TEST(ReachingDefs, SeesThroughJoinPoints) {
  auto M = parseOrDie(R"(
func main(%x) {
entry:
  li %v, 1
  blez %x, other
  jmp join
other:
  li %v, 2
join:
  out %v
  ret
}
)");
  const Function &F = *M->functionByName("main");
  CFG Cfg(F);
  ReachingDefs RD(F, Cfg);

  // Find the use site of the Out instruction.
  unsigned OutUse = ~0u;
  for (unsigned U = 0; U < RD.useSites().size(); ++U)
    if (RD.useSites()[U].I->op() == Opcode::Out)
      OutUse = U;
  ASSERT_NE(OutUse, ~0u);
  // Both li definitions reach it.
  EXPECT_EQ(RD.reachingDefsOf(OutUse).size(), 2u);
}

TEST(ReachingDefs, LocalKills) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %v, 1
  li %v, 2
  out %v
  ret
}
)");
  const Function &F = *M->functionByName("main");
  CFG Cfg(F);
  ReachingDefs RD(F, Cfg);
  unsigned OutUse = ~0u;
  for (unsigned U = 0; U < RD.useSites().size(); ++U)
    if (RD.useSites()[U].I->op() == Opcode::Out)
      OutUse = U;
  ASSERT_NE(OutUse, ~0u);
  auto Reaching = RD.reachingDefsOf(OutUse);
  ASSERT_EQ(Reaching.size(), 1u);
  EXPECT_EQ(RD.defSites()[Reaching[0]].I->imm(), 2);
}

TEST(ReachingDefs, FormalsAreEntryDefs) {
  auto M = parseOrDie(R"(
func main(%a) {
entry:
  out %a
  ret
}
)");
  const Function &F = *M->functionByName("main");
  CFG Cfg(F);
  ReachingDefs RD(F, Cfg);
  ASSERT_EQ(RD.defSites().size(), 1u);
  EXPECT_EQ(RD.defSites()[0].I, nullptr); // Formal dummy def.
  ASSERT_EQ(RD.edges().size(), 1u);
}

TEST(ReachingDefs, LoopCarriedDefs) {
  auto M = parseOrDie(R"(
func main() {
entry:
  li %i, 0
loop:
  addi %i, %i, 1
  slti %t, %i, 5
  bne %t, %zero, loop
  out %i
  ret
}
)");
  const Function &F = *M->functionByName("main");
  CFG Cfg(F);
  ReachingDefs RD(F, Cfg);
  // The addi's use of %i sees both the initial li and itself (around
  // the back edge).
  unsigned AddiUse = ~0u;
  for (unsigned U = 0; U < RD.useSites().size(); ++U)
    if (RD.useSites()[U].I->op() == Opcode::AddI)
      AddiUse = U;
  ASSERT_NE(AddiUse, ~0u);
  EXPECT_EQ(RD.reachingDefsOf(AddiUse).size(), 2u);
}

//===----------------------------------------------------------------------===//
// RDG structure
//===----------------------------------------------------------------------===//

TEST(RDG, SplitsLoadsAndStores) {
  auto M = parseOrDie(R"(
global g 2 = 5

func main() {
entry:
  la %p, g
  lw %v, 0(%p)
  addi %w, %v, 1
  sw %w, 4(%p)
  ret
}
)");
  const Function &F = *M->functionByName("main");
  CFG Cfg(F);
  RDG G(F, Cfg);

  const Instruction *Load = findOnly(F, Opcode::Lw);
  const Instruction *Store = findOnly(F, Opcode::Sw);
  const Instruction *La = findOnly(F, Opcode::La);
  const Instruction *Addi = findOnly(F, Opcode::AddI);

  unsigned LoadA = G.addressNode(*Load), LoadV = G.valueNode(*Load);
  unsigned StoreA = G.addressNode(*Store), StoreV = G.valueNode(*Store);
  ASSERT_NE(LoadA, ~0u);
  ASSERT_NE(LoadV, ~0u);

  // The split decouples address from value: the load's value node has no
  // predecessors, and its address node no successors.
  EXPECT_TRUE(G.node(LoadV).Preds.empty());
  EXPECT_TRUE(G.node(LoadA).Succs.empty());

  // la feeds both address nodes; addi feeds the store value.
  unsigned LaN = G.primaryNode(*La);
  auto HasEdge = [&](unsigned From, unsigned To) {
    const auto &S = G.node(From).Succs;
    return std::find(S.begin(), S.end(), To) != S.end();
  };
  EXPECT_TRUE(HasEdge(LaN, LoadA));
  EXPECT_TRUE(HasEdge(LaN, StoreA));
  EXPECT_TRUE(HasEdge(G.primaryNode(*Addi), StoreV));
  EXPECT_TRUE(HasEdge(LoadV, G.primaryNode(*Addi)));
}

TEST(RDG, LdStSliceStopsAtLoadValues) {
  auto M = parseOrDie(fixtures::IntVectorSum);
  const Function &F = *M->functionByName("main");
  CFG Cfg(F);
  RDG G(F, Cfg);

  std::vector<bool> LdSt = G.ldstSlice();

  // Loop induction and address arithmetic are in the LdSt slice.
  unsigned InSlice = 0, LoadVals = 0;
  for (unsigned N = 0; N < G.numNodes(); ++N) {
    if (LdSt[N])
      ++InSlice;
    if (G.node(N).Kind == NodeKind::LoadVal) {
      ++LoadVals;
      EXPECT_FALSE(LdSt[N]) << "a load value fed an address transitively "
                               "through a split node";
    }
  }
  EXPECT_GT(InSlice, 0u);
  EXPECT_EQ(LoadVals, 3u);

  // The vector-sum add (va + vb -> vc) computes only a store value: it
  // must not be in the LdSt slice. It is the unique Add fed by two
  // load values.
  const Instruction *SumAdd = nullptr;
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() != Opcode::Add)
      return;
    unsigned N = G.primaryNode(I);
    unsigned LoadPreds = 0;
    for (unsigned P : G.node(N).Preds)
      LoadPreds += G.node(P).Kind == NodeKind::LoadVal;
    if (LoadPreds == 2)
      SumAdd = &I;
  });
  ASSERT_NE(SumAdd, nullptr);
  EXPECT_FALSE(LdSt[G.primaryNode(*SumAdd)]);
}

TEST(RDG, PaperFigure3Components) {
  auto M = parseOrDie(fixtures::InvalidateForCall);
  const Function &F = *M->functionByName("main");
  CFG Cfg(F);
  RDG G(F, Cfg);

  // Identify the paper's instructions. I11 is the reg_tick load (the
  // load with a register base inside the loop, before any "out").
  const Instruction *I11 = nullptr, *I12 = nullptr, *I13 = nullptr,
                    *I14 = nullptr;
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() == Opcode::Bltz)
      I12 = &I;
  });
  ASSERT_NE(I12, nullptr);
  // I13 is the addi feeding the store; I14 the register-based store.
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() == Opcode::Sw && I.mem().Base.isValid())
      I14 = &I;
  });
  ASSERT_NE(I14, nullptr);
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() == Opcode::AddI && I.imm() == 1 && !I14->uses().empty() &&
        I.def() == I14->uses()[0])
      I13 = &I;
  });
  ASSERT_NE(I13, nullptr);
  F.forEachInstr([&](const Instruction &I) {
    if (I.isLoad() && I.mem().Base.isValid() && I13->uses()[0] == I.def())
      I11 = &I;
  });
  ASSERT_NE(I11, nullptr);

  // The paper: {I11v, I12, I13, I14v} form one connected component with
  // no address nodes -- the FPa component of Figure 4.
  const auto &Comp = G.componentOf();
  unsigned C = Comp[G.valueNode(*I11)];
  EXPECT_EQ(Comp[G.primaryNode(*I12)], C);
  EXPECT_EQ(Comp[G.primaryNode(*I13)], C);
  EXPECT_EQ(Comp[G.valueNode(*I14)], C);

  for (unsigned N = 0; N < G.numNodes(); ++N) {
    if (Comp[N] != C)
      continue;
    EXPECT_NE(G.node(N).Kind, NodeKind::LoadAddr);
    EXPECT_NE(G.node(N).Kind, NodeKind::StoreAddr);
    EXPECT_NE(G.node(N).Kind, NodeKind::CallNode);
  }

  // The loop-termination branch slice contains I15 (regno++), which is
  // also in the LdSt slice (regno feeds the sll/add addressing).
  const Instruction *I17 = nullptr;
  F.forEachInstr([&](const Instruction &I) {
    if (I.op() == Opcode::Bne && I.parent()->name() == "skip")
      I17 = &I;
  });
  ASSERT_NE(I17, nullptr);
  std::vector<bool> BrSlice = G.branchSlice(*I17);
  std::vector<bool> LdSt = G.ldstSlice();
  bool Overlaps = false;
  for (unsigned N = 0; N < G.numNodes(); ++N)
    if (BrSlice[N] && LdSt[N])
      Overlaps = true;
  EXPECT_TRUE(Overlaps)
      << "branch slice should share the induction variable with the "
         "LdSt slice, as in the paper's Figure 4";
}

TEST(RDG, CallArgumentFeedersAreFlagged) {
  auto M = parseOrDie(fixtures::InvalidateForCall);
  const Function &F = *M->functionByName("main");
  CFG Cfg(F);
  RDG G(F, Cfg);

  const Instruction *MoveArg = findOnly(F, Opcode::Move);
  EXPECT_TRUE(G.feedsCallOrRet(G.primaryNode(*MoveArg)));

  const Instruction *Bltz = findOnly(F, Opcode::Bltz);
  EXPECT_FALSE(G.feedsCallOrRet(G.primaryNode(*Bltz)));
}

TEST(RDG, FormalNodesDefineParameters) {
  auto M = parseOrDie(R"(
func f(%a, %b) {
entry:
  add %s, %a, %b
  ret %s
}

func main() {
entry:
  li %x, 1
  li %y, 2
  call %r, f(%x, %y)
  out %r
  ret
}
)");
  const Function &F = *M->functionByName("f");
  CFG Cfg(F);
  RDG G(F, Cfg);
  unsigned F0 = G.formalNode(0), F1 = G.formalNode(1);
  EXPECT_EQ(G.node(F0).Kind, NodeKind::Formal);
  const Instruction *Add = findOnly(F, Opcode::Add);
  unsigned AddN = G.primaryNode(*Add);
  auto &P = G.node(AddN).Preds;
  EXPECT_NE(std::find(P.begin(), P.end(), F0), P.end());
  EXPECT_NE(std::find(P.begin(), P.end(), F1), P.end());
  // The add feeds the return node.
  EXPECT_TRUE(G.feedsCallOrRet(AddN));
}

//===----------------------------------------------------------------------===//
// Execution estimates
//===----------------------------------------------------------------------===//

TEST(ExecutionEstimate, StaticLoopWeighting) {
  auto M = parseOrDie(R"(
func main(%x) {
entry:
  li %i, 0
loop:
  addi %i, %i, 1
  blez %x, skip
  addi %q, %i, 0
skip:
  slti %t, %i, 10
  bne %t, %zero, loop
  ret
}
)");
  const Function &F = *M->functionByName("main");
  CFG Cfg(F);
  auto Est = staticEstimate(F, Cfg);
  // entry=0 loop=1 body=2 skip=3 exit-side in skip.
  EXPECT_DOUBLE_EQ(Est[0], 1.0);
  EXPECT_DOUBLE_EQ(Est[1], 5.0); // p=1 in loop of depth 1.
  EXPECT_DOUBLE_EQ(Est[2], 2.5); // 50% branch, depth 1.
  EXPECT_DOUBLE_EQ(Est[3], 5.0);
}

TEST(ExecutionEstimate, ProfiledFunctionsUseExactCounts) {
  auto M = parseOrDie(fixtures::InvalidateForCall);
  vm::VM::Options Opts;
  Opts.CollectProfile = true;
  vm::VM Machine(*M, Opts);
  auto R = Machine.run();
  ASSERT_TRUE(R.Ok) << R.Error;

  BlockWeights W(*M, &Machine.profile());
  const Function *Main = M->functionByName("main");
  EXPECT_TRUE(W.isProfiled(Main));
  // The loop header runs 66 times.
  const sir::BasicBlock *Loop = nullptr;
  for (const auto &BB : Main->blocks())
    if (BB->name() == "loop")
      Loop = BB.get();
  ASSERT_NE(Loop, nullptr);
  EXPECT_DOUBLE_EQ(W.weightOf(Loop), 66.0);
}

TEST(ExecutionEstimate, UnprofiledFunctionsFallBackToStatic) {
  auto M = parseOrDie(R"(
func never() {
entry:
  li %x, 1
loop:
  addi %x, %x, 1
  slti %t, %x, 3
  bne %t, %zero, loop
  ret
}

func main() {
entry:
  ret
}
)");
  vm::VM::Options Opts;
  Opts.CollectProfile = true;
  vm::VM Machine(*M, Opts);
  auto R = Machine.run();
  ASSERT_TRUE(R.Ok) << R.Error;

  BlockWeights W(*M, &Machine.profile());
  const Function *Never = M->functionByName("never");
  EXPECT_FALSE(W.isProfiled(Never));
  // Static estimate gives the loop block weight 5 (p=1, depth 1).
  EXPECT_DOUBLE_EQ(W.weightOf(Never->blocks()[1].get()), 5.0);
}

} // namespace
