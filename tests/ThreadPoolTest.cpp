//===- tests/ThreadPoolTest.cpp - support::ThreadPool tests ---------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace fpint;
using support::ThreadPool;

TEST(ThreadPoolTest, CompletesAllTasksAndReturnsValues) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.threadCount(), 4u);

  std::vector<std::future<int>> Futures;
  for (int I = 0; I < 100; ++I)
    Futures.push_back(Pool.submit([I] { return I * I; }));

  int Sum = 0;
  for (auto &F : Futures)
    Sum += F.get();
  int Expected = 0;
  for (int I = 0; I < 100; ++I)
    Expected += I * I;
  EXPECT_EQ(Sum, Expected);
}

TEST(ThreadPoolTest, TasksRunEvenIfFuturesDropped) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(3);
    for (int I = 0; I < 50; ++I)
      Pool.submit([&Count] { ++Count; });
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool Pool(2);
  auto F = Pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  try {
    F.get();
    FAIL() << "expected exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "task failed");
  }
  // A failed task must not poison the pool.
  EXPECT_EQ(Pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SingleWorkerDegenerateCaseStillCorrect) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.threadCount(), 1u);
  std::vector<std::future<int>> Futures;
  std::atomic<int> Concurrent{0}, MaxConcurrent{0};
  for (int I = 0; I < 20; ++I)
    Futures.push_back(Pool.submit([&] {
      int C = ++Concurrent;
      int Prev = MaxConcurrent.load();
      while (C > Prev && !MaxConcurrent.compare_exchange_weak(Prev, C))
        ;
      --Concurrent;
      return 1;
    }));
  int Sum = 0;
  for (auto &F : Futures)
    Sum += F.get();
  EXPECT_EQ(Sum, 20);
  EXPECT_EQ(MaxConcurrent.load(), 1);
}

TEST(ThreadPoolTest, FpintJobsEnvOverridesDefaultCount) {
  ASSERT_EQ(setenv("FPINT_JOBS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
  ThreadPool Pool; // 0 => defaultThreadCount()
  EXPECT_EQ(Pool.threadCount(), 3u);

  ASSERT_EQ(setenv("FPINT_JOBS", "1", 1), 0);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), 1u);

  // Malformed / non-positive values degrade to one worker.
  ASSERT_EQ(setenv("FPINT_JOBS", "0", 1), 0);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), 1u);
  ASSERT_EQ(setenv("FPINT_JOBS", "bogus", 1), 0);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), 1u);

  ASSERT_EQ(unsetenv("FPINT_JOBS"), 0);
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, TasksMaySubmitSubtasks) {
  ThreadPool Pool(2);
  auto F = Pool.submit([&Pool] {
    // Subtask submitted from a worker; the parent does not wait on it
    // (waiting on queued-but-unstarted work could deadlock a full
    // pool), it only proves submit() is safe from worker threads.
    Pool.submit([] {});
    return 41;
  });
  EXPECT_EQ(F.get(), 41);
}
